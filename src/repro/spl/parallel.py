"""Tagged shared-memory constructs of the paper (Section 3.1).

Three *parallel formula constructs* declare that a subformula is fully
optimized for a ``p``-way shared-memory machine with cache-line length ``mu``
(measured in complex elements):

* :class:`ParTensor`   -- ``I_p (x)|| A``      (paper: ``I_p (x)_k A``)
* :class:`ParDirectSum`-- ``(+)||_{i<p} A_i``  (paper: ``(+)_k A_i``)
* :class:`LinePerm`    -- ``P (x)~ I_mu``      (paper: ``P (x)bar I_mu``)

They are semantically identical to their untagged counterparts but assert the
paper's guarantees: with block sizes that are multiples of ``mu``, each cache
line is owned by exactly one processor (no false sharing) and the ``p``
blocks have equal cost (load balance).

:class:`SMP` is the rewriting *tag* ``A |_{smp(p, mu)}``: a request that the
rewriting system transform ``A`` into parallel constructs.
"""

from __future__ import annotations

import numpy as np

from .expr import COMPLEX, Expr, SPLError, Tensor, _check_batched
from .matrices import I


class SMP(Expr):
    """The tag ``A |_{smp(p, mu)}``: ``A`` awaits shared-memory rewriting.

    Semantically transparent (it *is* ``A``); the rewriting rules of Table 1
    match on this node and either push the tag down or replace the subtree by
    tagged parallel constructs.
    """

    def __init__(self, p: int, mu: int, child: Expr):
        if p < 1:
            raise SPLError(f"smp tag: processor count must be >= 1, got {p}")
        if mu < 1:
            raise SPLError(f"smp tag: cache line length must be >= 1, got {mu}")
        self.p = int(p)
        self.mu = int(mu)
        self.child = child
        self.rows = child.rows
        self.cols = child.cols

    @property
    def children(self) -> tuple[Expr, ...]:
        return (self.child,)

    def rebuild(self, *children: Expr) -> Expr:
        (child,) = children
        return SMP(self.p, self.mu, child)

    def _key(self) -> tuple:
        return (SMP, self.p, self.mu, self.child._key())

    def apply(self, x: np.ndarray) -> np.ndarray:
        return self.child.apply(x)

    def to_matrix(self) -> np.ndarray:
        return self.child.to_matrix()

    def flops(self) -> int:
        return self.child.flops()


class ParTensor(Expr):
    """``I_p (x)|| A``: p-way embarrassingly parallel loop over ``A``.

    Declared fully optimized: iteration ``i`` of the loop runs on processor
    ``i`` and touches only the contiguous block ``x[i*n : (i+1)*n]`` where
    ``n = A.cols`` (and the analogous output block).
    """

    def __init__(self, p: int, child: Expr):
        if p < 1:
            raise SPLError(f"ParTensor: p must be >= 1, got {p}")
        self.p = int(p)
        self.child = child
        self.rows = p * child.rows
        self.cols = p * child.cols

    @property
    def children(self) -> tuple[Expr, ...]:
        return (self.child,)

    def rebuild(self, *children: Expr) -> Expr:
        (child,) = children
        return ParTensor(self.p, child)

    def _key(self) -> tuple:
        return (ParTensor, self.p, self.child._key())

    def untag(self) -> Expr:
        """The semantically equal untagged formula ``I_p (x) A``."""
        return Tensor(I(self.p), self.child)

    def apply(self, x: np.ndarray) -> np.ndarray:
        x = _check_batched(x, self.cols, "ParTensor")
        lead = x.shape[:-1]
        X = x.reshape(*lead, self.p, self.child.cols)
        Y = self.child.apply(X)
        return Y.reshape(*lead, self.rows)

    def to_matrix(self) -> np.ndarray:
        return np.kron(np.eye(self.p, dtype=COMPLEX), self.child.to_matrix())

    def flops(self) -> int:
        return self.p * self.child.flops()


class ParDirectSum(Expr):
    """``(+)||_{i<p} A_i``: parallel direct sum, block ``i`` on processor ``i``.

    All blocks must share the same dimensions so the load is balanced when
    the blocks have equal cost (paper assumption; true for the split twiddle
    diagonals this construct is used for).
    """

    def __init__(self, blocks: tuple[Expr, ...] | list[Expr]):
        blocks = tuple(blocks)
        if not blocks:
            raise SPLError("ParDirectSum needs at least one block")
        r, c = blocks[0].rows, blocks[0].cols
        for b in blocks[1:]:
            if (b.rows, b.cols) != (r, c):
                raise SPLError(
                    "ParDirectSum blocks must have equal dimensions for load "
                    f"balance; got {(r, c)} vs {(b.rows, b.cols)}"
                )
        self.blocks = blocks
        self.p = len(blocks)
        self.rows = sum(b.rows for b in blocks)
        self.cols = sum(b.cols for b in blocks)

    @property
    def children(self) -> tuple[Expr, ...]:
        return self.blocks

    def rebuild(self, *children: Expr) -> Expr:
        return ParDirectSum(children)

    def _key(self) -> tuple:
        return (ParDirectSum, tuple(b._key() for b in self.blocks))

    def apply(self, x: np.ndarray) -> np.ndarray:
        x = _check_batched(x, self.cols, "ParDirectSum")
        lead = x.shape[:-1]
        out = np.empty(lead + (self.rows,), dtype=COMPLEX)
        bc = self.blocks[0].cols
        br = self.blocks[0].rows
        for i, b in enumerate(self.blocks):
            out[..., i * br : (i + 1) * br] = b.apply(
                x[..., i * bc : (i + 1) * bc]
            )
        return out

    def to_matrix(self) -> np.ndarray:
        out = np.zeros((self.rows, self.cols), dtype=COMPLEX)
        r = c = 0
        for b in self.blocks:
            out[r : r + b.rows, c : c + b.cols] = b.to_matrix()
            r += b.rows
            c += b.cols
        return out

    def flops(self) -> int:
        return sum(b.flops() for b in self.blocks)


class LinePerm(Expr):
    """``P (x)~ I_mu``: a permutation at cache-line granularity.

    ``P`` is any (composite) permutation expression; the construct moves
    whole lines of ``mu`` consecutive complex elements, so the ownership of
    entire cache lines — never parts of them — is exchanged between
    processors.  Spiral never executes these explicitly; loop merging folds
    them into the index functions of adjacent loops.
    """

    def __init__(self, perm: Expr, mu: int):
        if mu < 1:
            raise SPLError(f"LinePerm: mu must be >= 1, got {mu}")
        if perm.rows != perm.cols:
            raise SPLError("LinePerm: P must be square")
        self.perm_expr = perm
        self.mu = int(mu)
        self.rows = self.cols = perm.rows * mu

    @property
    def children(self) -> tuple[Expr, ...]:
        return (self.perm_expr,)

    def rebuild(self, *children: Expr) -> Expr:
        (perm,) = children
        return LinePerm(perm, self.mu)

    def _key(self) -> tuple:
        return (LinePerm, self.mu, self.perm_expr._key())

    def untag(self) -> Expr:
        """The semantically equal untagged formula ``P (x) I_mu``."""
        if self.mu == 1:
            return self.perm_expr
        return Tensor(self.perm_expr, I(self.mu))

    def apply(self, x: np.ndarray) -> np.ndarray:
        x = _check_batched(x, self.cols, "LinePerm")
        lead = x.shape[:-1]
        k = self.perm_expr.rows
        X = x.reshape(*lead, k, self.mu)
        # Permute whole lines: treat each length-mu line as one unit.
        Y = np.swapaxes(self.perm_expr.apply(np.swapaxes(X, -1, -2)), -1, -2)
        return np.ascontiguousarray(Y).reshape(*lead, self.rows)

    def to_matrix(self) -> np.ndarray:
        return np.kron(self.perm_expr.to_matrix(), np.eye(self.mu, dtype=COMPLEX))

    def flops(self) -> int:
        return 0


def smp(p: int, mu: int, expr: Expr) -> SMP:
    """Tag ``expr`` for shared-memory rewriting: ``expr |_{smp(p, mu)}``."""
    return SMP(p, mu, expr)
