"""repro: a reproduction of "FFT Program Generation for Shared Memory:
SMP and Multicore" (Franchetti, Voronenko, Pueschel; SC 2006).

A Spiral-style FFT program generator with the paper's shared-memory
extension: an SPL formula language, a rewriting system implementing the
Table 1 parallelization rules, Sigma-SPL loop merging, Python and
multithreaded-C backends, SMP runtimes, simulated SMP/multicore machines for
the Figure 3 evaluation, baselines (six-step FFT, iterative radix-2, an
FFTW behavioural model), and factorization search.

Quickstart::

    import numpy as np
    from repro import generate_fft
    from repro.smp import PThreadsRuntime

    fft = generate_fft(1024, threads=2, mu=4)   # Eq. (14)-based program
    x = np.random.randn(1024) + 1j * np.random.randn(1024)
    with PThreadsRuntime(2) as pool:
        y = fft.run(x, pool)
    assert np.allclose(y, np.fft.fft(x))
"""

from . import (
    baselines,
    codegen,
    core,
    machine,
    rewrite,
    search,
    serve,
    sigma,
    smp,
    spl,
    trace,
    transforms,
    vector,
)
from .frontend import (
    SpiralSMP,
    TransformPlan,
    feasible_threads,
    generate_fft,
    spiral_formula,
    verify_program,
)
from .plotting import ascii_chart
from .rewrite import build_eq14, derive_multicore_ct, parallelize
from .wisdom import Wisdom
from .spl import DFT, format_expr, is_fully_optimized

__version__ = "1.0.0"

__all__ = [
    "DFT",
    "ascii_chart",
    "SpiralSMP",
    "Wisdom",
    "TransformPlan",
    "baselines",
    "build_eq14",
    "codegen",
    "core",
    "derive_multicore_ct",
    "feasible_threads",
    "format_expr",
    "generate_fft",
    "is_fully_optimized",
    "machine",
    "parallelize",
    "rewrite",
    "search",
    "serve",
    "sigma",
    "smp",
    "spiral_formula",
    "spl",
    "trace",
    "transforms",
    "vector",
    "verify_program",
]
