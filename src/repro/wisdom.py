"""Wisdom: persistent autotuning results (the FFTW-style plan cache).

Searching the factorization space costs time; its *result* — the best tree
for a (size, threads, mu, strategy) configuration — is a few bytes.  This
module persists those results as JSON so later sessions (or processes)
regenerate the tuned program directly, the same role FFTW's "wisdom" files
play.

    wisdom = Wisdom("wisdom.json")
    fft = wisdom.plan(4096, threads=2)   # searches once, cached afterwards

A :class:`Wisdom` instance is safe for concurrent use: the store and the
program cache are lock-guarded, ``plan()`` is *single-flight* per
configuration (N threads racing on the same key trigger exactly one search;
the rest wait for its result), and saves are atomic (written to a temporary
file in the same directory, then ``os.replace``\\ d over the target) so
parallel planners can neither corrupt nor torn-read a wisdom file.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
import threading
from pathlib import Path
from typing import Optional

from .codegen.python_backend import GeneratedProgram, generate
from .rewrite.breakdown import expand_from_tree
from .rewrite.derive import derive_multicore_ct
from .rewrite.breakdown import expand_dft
from .search.dp import Objective, dp_search, flop_objective
from .sigma.lower import lower
from .trace import get_tracer


#: schema version of the ``tune`` block inside a wisdom entry.  Bumped
#: whenever the measured-record layout changes; readers ignore records
#: from other versions, so stale fleet wisdom degrades to "no record"
#: instead of misguiding the tuner.
TUNE_VERSION = 1


def _tree_to_json(tree):
    if isinstance(tree, int):
        return tree
    l, r = tree
    return [_tree_to_json(l), _tree_to_json(r)]


def _tree_from_json(obj):
    if isinstance(obj, int):
        return obj
    l, r = obj
    return (_tree_from_json(l), _tree_from_json(r))


class Wisdom:
    """A persistent cache of search results keyed by plan configuration."""

    def __init__(self, path: Optional[str | Path] = None):
        self.path = Path(path) if path is not None else None
        self._lock = threading.RLock()
        self._store: dict = {}
        self._programs: dict = {}
        # per-key planning locks: the single-flight mechanism
        self._planning: dict[str, threading.Lock] = {}
        if self.path is not None and self.path.exists():
            try:
                self._store = json.loads(self.path.read_text())
            except (json.JSONDecodeError, OSError):
                self._store = {}

    # -- persistence -----------------------------------------------------------

    def _save(self) -> None:
        """Atomically persist the store (temp file + ``os.replace``)."""
        with self._lock:
            if self.path is None:
                return
            payload = json.dumps(self._store, indent=1)
            fd, tmp = tempfile.mkstemp(
                dir=str(self.path.parent), prefix=self.path.name, suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w") as fh:
                    fh.write(payload)
                os.replace(tmp, self.path)
            except BaseException:
                with contextlib.suppress(OSError):
                    os.unlink(tmp)
                raise

    @staticmethod
    def _key(n: int, threads: int, mu: int) -> str:
        return f"dft:{n}:p{threads}:mu{mu}"

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    def __contains__(self, key: tuple) -> bool:
        n, threads, mu = key
        with self._lock:
            return self._key(n, threads, mu) in self._store

    def forget(self) -> None:
        """Drop all stored plans (in memory and on disk)."""
        with self._lock:
            self._store = {}
            self._programs = {}
            self._save()

    # -- planning ----------------------------------------------------------------

    def plan(
        self,
        n: int,
        threads: int = 1,
        mu: int = 4,
        objective: Optional[Objective] = None,
        leaf_max: int = 32,
    ) -> GeneratedProgram:
        """Return a tuned program, searching only on a wisdom miss.

        For ``threads > 1`` the multicore CT derivation fixes the top-level
        structure (Eq. 14); the search tunes the sequential leaf
        factorizations.  The search objective defaults to arithmetic count
        (cheap, deterministic); pass ``measured_objective()`` or
        ``model_objective(spec)`` for tuned plans.

        Concurrent callers racing on the same configuration are coalesced:
        exactly one performs the search (``wisdom.miss`` counts 1), the rest
        block on the per-key planning lock and return the same program.
        """
        tr = get_tracer()
        key = self._key(n, threads, mu)
        with self._lock:
            program = self._programs.get(key)
            if program is not None:
                tr.count("wisdom.hit", 1, kind="program")
                return program
            keylock = self._planning.setdefault(key, threading.Lock())
        with keylock:
            # single-flight: late arrivals find the leader's program here
            with self._lock:
                program = self._programs.get(key)
                if program is not None:
                    tr.count("wisdom.hit", 1, kind="program")
                    return program
                entry = self._store.get(key)
            if entry is None or "tree" not in entry:
                # no tree yet — the entry may still carry tune/observation
                # records written by the measured-search side; merge into
                # it rather than clobbering those
                tr.count("wisdom.miss", 1)
                with tr.span("wisdom.search", "search", key=key):
                    res = dp_search(
                        n, objective or flop_objective, leaf_max=leaf_max
                    )
                with self._lock:
                    entry = self._store.setdefault(key, {})
                    entry.update(
                        tree=_tree_to_json(res.tree),
                        value=res.value,
                        evaluations=res.evaluations,
                    )
                    self._save()
            else:
                tr.count("wisdom.hit", 1, kind="store")
            tree = _tree_from_json(entry["tree"])
            program = self._build(n, threads, mu, tree, leaf_max)
            with self._lock:
                self._programs[key] = program
            return program

    def _build(self, n, threads, mu, tree, leaf_max) -> GeneratedProgram:
        if threads > 1:
            # top structure from Eq. (14); leaves re-expanded per the tuned
            # radix profile (balanced strategy with the tuned leaf bound)
            f = expand_dft(
                derive_multicore_ct(n, threads, mu),
                "balanced",
                min_leaf=leaf_max,
            )
        else:
            f = expand_from_tree(n, tree)
        return generate(lower(f))

    def entry(self, n: int, threads: int = 1, mu: int = 4) -> Optional[dict]:
        """The stored search record (tree, objective value, evaluations)."""
        with self._lock:
            return self._store.get(self._key(n, threads, mu))

    # -- backend artifacts -------------------------------------------------------

    def record_artifact(
        self, n: int, threads: int, mu: int, backend: str, info: dict
    ) -> None:
        """Attach an execution-backend artifact record to a plan's entry.

        The compiled backend passes its shared-object provenance (source
        hash, cached ``.so`` path, compiler fingerprint) here, so a wisdom
        file documents not just the tuned tree but the exact native
        artifact serving it — keyed, like the on-disk codelet cache, by
        codelet hash + compiler identity.  No-op persistence-wise until the
        entry exists; creates a stub entry otherwise.
        """
        key = self._key(n, threads, mu)
        with self._lock:
            entry = self._store.setdefault(key, {})
            entry.setdefault("artifacts", {})[backend] = dict(info)
            self._save()

    def artifact(
        self, n: int, threads: int, mu: int, backend: str
    ) -> Optional[dict]:
        """The recorded artifact for (config, backend), or None."""
        with self._lock:
            entry = self._store.get(self._key(n, threads, mu))
            if not entry:
                return None
            return entry.get("artifacts", {}).get(backend)

    # -- measured tuning records (the live-fleet side) ---------------------------

    @staticmethod
    def _lane(backend: str, runtime: str) -> str:
        return f"{backend}/{runtime}"

    def _tune_block(self, entry: dict) -> dict:
        """The version-stamped ``tune`` block of ``entry``, creating or
        resetting it when the stored version does not match."""
        tune = entry.get("tune")
        if not isinstance(tune, dict) or tune.get("version") != TUNE_VERSION:
            tune = {"version": TUNE_VERSION}
            entry["tune"] = tune
        return tune

    def record_tuning(
        self,
        n: int,
        threads: int,
        mu: int,
        backend: str,
        runtime: str,
        record: dict,
    ) -> None:
        """Persist a measured-search ranking for one executor lane.

        ``record`` comes from :func:`repro.tune.measured_search` — the
        strategy ranking with measured seconds per candidate.  Stored
        under a :data:`TUNE_VERSION` stamp so readers on other schema
        versions skip it, and keyed ``backend/runtime`` so the fleet
        shares rankings per (n, threads, mu, backend, runtime).
        """
        key = self._key(n, threads, mu)
        with self._lock:
            entry = self._store.setdefault(key, {})
            tune = self._tune_block(entry)
            tune.setdefault("rankings", {})[self._lane(backend, runtime)] = (
                dict(record)
            )
            self._save()
        get_tracer().count("wisdom.tune_record", 1, kind="ranking")

    def tuning(
        self, n: int, threads: int, mu: int, backend: str, runtime: str
    ) -> Optional[dict]:
        """The stored measured ranking for one lane, or None.

        Records written under a different :data:`TUNE_VERSION` are
        treated as absent.
        """
        with self._lock:
            entry = self._store.get(self._key(n, threads, mu))
            if not entry:
                return None
            tune = entry.get("tune")
            if not isinstance(tune, dict) or tune.get("version") != TUNE_VERSION:
                return None
            return tune.get("rankings", {}).get(self._lane(backend, runtime))

    def record_observation(
        self,
        n: int,
        threads: int,
        mu: int,
        backend: str,
        runtime: str,
        summary: dict,
    ) -> None:
        """Merge one observed-latency window into the fleet record.

        ``summary`` is a :func:`repro.serve.metrics.latency_summary`
        block plus a ``requests`` count (what FFTServer/shard stats
        report per plan key).  ``requests`` accumulates across windows;
        ``last`` holds the most recent window; ``best_p50_ms`` keeps the
        fastest median any window achieved — the tuner's regression
        baseline.
        """
        key = self._key(n, threads, mu)
        requests = int(summary.get("requests", 0))
        p50 = summary.get("p50_ms")
        with self._lock:
            entry = self._store.setdefault(key, {})
            tune = self._tune_block(entry)
            obs = tune.setdefault("observations", {})
            slot = obs.setdefault(
                self._lane(backend, runtime), {"requests": 0}
            )
            slot["requests"] = int(slot.get("requests", 0)) + requests
            slot["last"] = {k: v for k, v in summary.items()
                            if k != "requests"}
            if isinstance(p50, (int, float)) and requests > 0:
                best = slot.get("best_p50_ms")
                if best is None or p50 < best:
                    slot["best_p50_ms"] = p50
            self._save()
        get_tracer().count("wisdom.tune_record", 1, kind="observation")

    def observation(
        self, n: int, threads: int, mu: int, backend: str, runtime: str
    ) -> Optional[dict]:
        """The merged observation record for one lane, or None."""
        with self._lock:
            entry = self._store.get(self._key(n, threads, mu))
            if not entry:
                return None
            tune = entry.get("tune")
            if not isinstance(tune, dict) or tune.get("version") != TUNE_VERSION:
                return None
            return tune.get("observations", {}).get(
                self._lane(backend, runtime)
            )
