"""Index-map algebra for Sigma-SPL loop merging.

Spiral's loop merging (Franchetti/Voronenko/Pueschel, PLDI'05 — the paper's
ref [11]) folds permutations and diagonals into the gather/scatter index
functions of adjacent loops.  This reproduction performs the same merging
with *index tables*: every permutation expression is materialized as a
source-index table, composition is table indexing, and closed forms (strided
slices) are *recovered* from the tables when the code generator wants to emit
structured array accesses.  The result is identical merged loops with a far
simpler (and exhaustively testable) algebra.

Conventions
-----------
A permutation ``P`` (matrix semantics ``y = P x``) is represented by its
*source table* ``s`` with ``y[i] = x[s[i]]``.  For SPL permutation
expressions the table is obtained by applying the expression to the index
vector itself — an O(n) oracle that is correct for any permutation formula.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..spl.expr import COMPLEX, Expr


def source_table(perm_expr: Expr) -> np.ndarray:
    """Source-index table of a permutation expression.

    ``y = P x`` with ``y[i] = x[table[i]]``.  Works for any SPL expression
    that denotes a permutation matrix (L, Perm, LinePerm, tensor products and
    compositions thereof) by applying it to ``[0, 1, ..., n-1]``.
    """
    n = perm_expr.rows
    idx = np.arange(n, dtype=np.float64).astype(COMPLEX)
    out = perm_expr.apply(idx)
    table = np.real(out).round().astype(np.intp)
    if not np.array_equal(np.sort(table), np.arange(n)):
        raise ValueError(
            f"expression {perm_expr!r} is not a permutation (table invalid)"
        )
    return table


def invert_table(table: np.ndarray) -> np.ndarray:
    """Inverse permutation table: ``inv[table[i]] = i``."""
    inv = np.empty_like(table)
    inv[table] = np.arange(table.size)
    return inv


def diag_values(diag_expr: Expr) -> np.ndarray:
    """Diagonal entries of a diagonal expression (via application to ones)."""
    n = diag_expr.rows
    return diag_expr.apply(np.ones(n, dtype=COMPLEX))


@dataclass(frozen=True)
class SliceForm:
    """A recovered 1-D strided access: ``base + stride * arange(length)``."""

    base: int
    stride: int
    length: int

    def indices(self) -> np.ndarray:
        return self.base + self.stride * np.arange(self.length, dtype=np.intp)

    def as_python_slice(self) -> str:
        """Python slice source text (requires positive stride)."""
        stop = self.base + self.stride * self.length
        if self.stride == 1:
            return f"{self.base}:{stop}"
        return f"{self.base}:{stop}:{self.stride}"


def recover_slice(row: np.ndarray) -> Optional[SliceForm]:
    """Recognize an arithmetic progression in an index row, if present."""
    n = int(row.size)
    if n == 0:
        return None
    if n == 1:
        return SliceForm(int(row[0]), 1, 1)
    d = np.diff(row)
    if np.all(d == d[0]) and d[0] > 0:
        return SliceForm(int(row[0]), int(d[0]), n)
    return None


@dataclass(frozen=True)
class GridForm:
    """A recovered 2-D strided access family for a whole loop.

    Row ``j`` of the gather/scatter matrix is
    ``base + j*row_stride + col_stride*arange(k)``.
    """

    base: int
    row_stride: int
    col_stride: int
    rows: int
    cols: int

    def indices(self) -> np.ndarray:
        j = np.arange(self.rows, dtype=np.intp)[:, None]
        t = np.arange(self.cols, dtype=np.intp)[None, :]
        return self.base + j * self.row_stride + t * self.col_stride


def recover_grid(table: np.ndarray) -> Optional[GridForm]:
    """Recognize a rank-1-in-each-axis structure in a 2-D index table."""
    if table.ndim != 2 or table.size == 0:
        return None
    rows, cols = table.shape
    base = int(table[0, 0])
    col_stride = int(table[0, 1] - table[0, 0]) if cols > 1 else 1
    row_stride = int(table[1, 0] - table[0, 0]) if rows > 1 else 1
    form = GridForm(base, row_stride, col_stride, rows, cols)
    if np.array_equal(form.indices(), table):
        return form
    return None
