"""The Sigma-SPL loop intermediate representation.

A :class:`SigmaProgram` is an ordered pipeline of :class:`Stage` objects.
Each stage is a set of :class:`BlockLoop` work items, partitioned over
processors; all permutations and diagonals of the source formula have been
folded into the loops' gather/scatter index tables and scale vectors, so a
stage reads its input exactly once and writes its output exactly once — the
memory behaviour the paper's cost arguments rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..spl.expr import COMPLEX, Expr
from .index_map import GridForm, recover_grid


@dataclass
class BlockLoop:
    """``count`` applications of a small kernel with merged indexing.

    Execution semantics (one loop iteration ``j < count``)::

        t_in  = pre_scale[j] * x[gather[j]]        # merged perm + diag
        t_out = kernel(t_in)                        # codelet
        y[scatter[j]] = post_scale[j] * t_out       # merged perm + diag

    ``gather``/``scatter`` are ``count x k`` index tables; ``pre_scale`` /
    ``post_scale`` are optional ``count x k`` complex factors (``None`` means
    all-ones).  ``proc`` is the owning processor for parallel stages.

    ``nu`` is the vector granularity carried down from the ``vec(ν)``
    rewriting (:mod:`repro.vector`): ``nu > 1`` asserts that the loop's
    iterations come in blocks of ``nu`` consecutive rows executing the
    same kernel — the unit the C emitters widen into ν-way SIMD bodies.
    Interpreted execution ignores it (the semantics are unchanged); it
    is purely a code-shape attribute.
    """

    kernel: Expr
    gather: np.ndarray
    scatter: np.ndarray
    pre_scale: Optional[np.ndarray] = None
    post_scale: Optional[np.ndarray] = None
    proc: Optional[int] = None
    nu: int = 1

    def __post_init__(self) -> None:
        if self.nu < 1 or self.gather.shape[0] % self.nu:
            raise ValueError(
                f"nu={self.nu} must be >= 1 and divide the iteration count "
                f"{self.gather.shape[0]}"
            )
        k_in, k_out = self.kernel.cols, self.kernel.rows
        if self.gather.ndim != 2 or self.gather.shape[1] != k_in:
            raise ValueError(
                f"gather shape {self.gather.shape} does not match kernel "
                f"input size {k_in}"
            )
        if self.scatter.ndim != 2 or self.scatter.shape[1] != k_out:
            raise ValueError(
                f"scatter shape {self.scatter.shape} does not match kernel "
                f"output size {k_out}"
            )
        if self.gather.shape[0] != self.scatter.shape[0]:
            raise ValueError("gather/scatter iteration counts differ")
        for name in ("pre_scale", "post_scale"):
            s = getattr(self, name)
            if s is not None and np.allclose(s, 1.0):
                setattr(self, name, None)

    @property
    def count(self) -> int:
        return int(self.gather.shape[0])

    @property
    def kernel_size(self) -> int:
        return int(self.kernel.cols)

    def execute(self, x: np.ndarray, y: np.ndarray) -> None:
        """Run all iterations, vectorized over the loop dimension."""
        t = x[self.gather]
        if self.pre_scale is not None:
            t = t * self.pre_scale
        t = self.kernel.apply(t)
        if self.post_scale is not None:
            t = t * self.post_scale
        y[self.scatter] = t

    def flops(self) -> int:
        total = self.count * self.kernel.flops()
        if self.pre_scale is not None:
            total += 6 * self.pre_scale.size
        if self.post_scale is not None:
            total += 6 * self.post_scale.size
        return total

    def gather_grid(self) -> Optional[GridForm]:
        return recover_grid(self.gather)

    def scatter_grid(self) -> Optional[GridForm]:
        return recover_grid(self.scatter)


@dataclass
class Stage:
    """One pipeline stage: loops partitioned over processors.

    ``needs_barrier`` records whether a synchronization point is required
    *before* this stage (i.e. whether any processor reads data written by a
    different processor in the previous stage).
    """

    loops: list[BlockLoop]
    parallel: bool = False
    needs_barrier: bool = True
    name: str = ""

    @property
    def procs(self) -> list[int]:
        return sorted({lp.proc for lp in self.loops if lp.proc is not None})

    def loops_for(self, proc: Optional[int]) -> list[BlockLoop]:
        return [lp for lp in self.loops if lp.proc == proc or lp.proc is None]

    def execute(self, x: np.ndarray, y: np.ndarray) -> None:
        for lp in self.loops:
            lp.execute(x, y)

    def flops(self) -> int:
        return sum(lp.flops() for lp in self.loops)

    def reads(self, proc: Optional[int] = None) -> np.ndarray:
        loops = self.loops if proc is None else self.loops_for(proc)
        if not loops:
            return np.empty(0, dtype=np.intp)
        return np.concatenate([lp.gather.reshape(-1) for lp in loops])

    def writes(self, proc: Optional[int] = None) -> np.ndarray:
        loops = self.loops if proc is None else self.loops_for(proc)
        if not loops:
            return np.empty(0, dtype=np.intp)
        return np.concatenate([lp.scatter.reshape(-1) for lp in loops])


class SigmaValidationError(Exception):
    """A structurally invalid Sigma-SPL program."""


@dataclass
class SigmaProgram:
    """A lowered transform: ``size -> size`` pipeline of stages.

    Stages are stored in *application order* (stage 0 runs first).
    """

    size: int
    stages: list[Stage] = field(default_factory=list)

    def apply(self, x: np.ndarray) -> np.ndarray:
        """Reference executor (sequential, double-buffered)."""
        x = np.asarray(x, dtype=COMPLEX)
        if x.shape != (self.size,):
            raise ValueError(f"expected shape ({self.size},), got {x.shape}")
        cur = x.copy()
        nxt = np.empty_like(cur)
        for stage in self.stages:
            stage.execute(cur, nxt)
            cur, nxt = nxt, cur
        return cur

    def validate(self) -> None:
        """Check each stage writes every output index exactly once."""
        full = np.arange(self.size)
        for si, stage in enumerate(self.stages):
            w = np.sort(stage.writes())
            if not np.array_equal(w, full):
                raise SigmaValidationError(
                    f"stage {si} ({stage.name!r}) writes {w.size} indices, "
                    f"not a partition of [0, {self.size})"
                )
            r = np.sort(stage.reads())
            if not np.array_equal(r, full):
                raise SigmaValidationError(
                    f"stage {si} ({stage.name!r}) reads {r.size} indices, "
                    f"not a partition of [0, {self.size})"
                )

    def flops(self) -> int:
        return sum(stage.flops() for stage in self.stages)

    def barrier_count(self) -> int:
        return sum(1 for s in self.stages if s.needs_barrier)

    def parallel_stage_count(self) -> int:
        return sum(1 for s in self.stages if s.parallel)

    def analyze_barriers(self, mu: int = 1) -> None:
        """Elide barriers between stages whose dataflow is processor-private.

        Workers run unsynchronized through consecutive barrier-free stages,
        so elision is sound only when, over the *whole* barrier-free chain,
        every processor touches (reads or writes, in either double buffer) a
        set of indices disjoint from every other processor's.  Disjointness
        makes any interleaving race-free and forces reads to come from the
        same processor's earlier writes (stage writes partition the output,
        so a cross-processor producer would intersect access sets).

        ``mu`` sets the disjointness granularity in elements.  The default
        (1) checks element indices — race freedom only.  Passing the cache
        line length checks *line* indices instead, which is strictly
        stronger: an element-disjoint but line-sharing chain is race-free
        yet ping-pongs line ownership with no fence bounding the episode,
        so the µ-aware mode keeps its barrier.  The dynamic checker
        (:mod:`repro.check`) flags exactly those chains when a plan was
        analyzed µ-obliviously.

        The first stage never needs a barrier (inputs are ready before the
        plan starts).
        """
        if mu < 1:
            raise ValueError(f"need mu >= 1, got {mu}")
        if not self.stages:
            return
        self.stages[0].needs_barrier = False
        # per-proc cumulative access sets since the last barrier
        chain: dict[int, np.ndarray] = self._stage_accesses(
            self.stages[0], mu
        )
        for cur in self.stages[1:]:
            cur_acc = self._stage_accesses(cur, mu)
            merged = self._merge_accesses(chain, cur_acc)
            if (
                cur.parallel
                and merged is not None
                and self._pairwise_disjoint(merged)
            ):
                cur.needs_barrier = False
                chain = merged
            else:
                cur.needs_barrier = True
                chain = cur_acc if cur.parallel else {}

    @staticmethod
    def _stage_accesses(stage: Stage, mu: int = 1) -> dict[int, np.ndarray]:
        if not stage.parallel:
            return {}
        return {
            proc: np.unique(
                np.concatenate([stage.reads(proc), stage.writes(proc)]) // mu
            )
            for proc in stage.procs
        }

    @staticmethod
    def _merge_accesses(
        a: dict[int, np.ndarray], b: dict[int, np.ndarray]
    ) -> Optional[dict[int, np.ndarray]]:
        if not a or not b:
            return None
        out = dict(a)
        for proc, acc in b.items():
            out[proc] = (
                np.union1d(out[proc], acc) if proc in out else acc
            )
        return out

    @staticmethod
    def _pairwise_disjoint(acc: dict[int, np.ndarray]) -> bool:
        procs = sorted(acc)
        total = sum(acc[p].size for p in procs)
        if total == 0:
            return True
        merged = np.concatenate([acc[p] for p in procs])
        return np.unique(merged).size == total

    def summary(self) -> str:
        lines = [f"SigmaProgram(size={self.size}, stages={len(self.stages)})"]
        for i, s in enumerate(self.stages):
            kinds = {type(lp.kernel).__name__ for lp in s.loops}
            nu = max((lp.nu for lp in s.loops), default=1)
            lines.append(
                f"  stage {i}: {s.name or 'unnamed'}"
                f" loops={len(s.loops)} parallel={s.parallel}"
                f" barrier={s.needs_barrier} kernels={sorted(kinds)}"
                + (f" nu={nu}" if nu > 1 else "")
            )
        return "\n".join(lines)
