"""Lowering: fully-optimized SPL formulas -> Sigma-SPL loop programs.

This performs the paper's formula-optimization step (ref [11]): walk the
stage pipeline right-to-left keeping a *pending readdressing* (a permutation
source table plus a pointwise multiplier vector); permutations and diagonals
accumulate into the pending state and are folded into the gather tables and
scale factors of the next compute loop.  Leftover pending state at the left
end folds into the final stage's scatter.  With ``merge_permutations=False``
the folding is disabled and permutations/diagonals become explicit copy
passes — exactly the structure of the classical six-step algorithm, used as
the loop-merging ablation and baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..spl.expr import COMPLEX, Compose, Expr, SPLError, Tensor
from ..spl.matrices import Diag, DiagFunc, I, Twiddle
from ..spl.parallel import ParDirectSum, ParTensor, SMP
from ..vector.constructs import InRegisterTranspose, VecDiag, VecTensor
from ..rewrite.pattern import is_permutation_expr
from ..trace import get_tracer
from .index_map import diag_values, invert_table, source_table
from .loops import BlockLoop, SigmaProgram, Stage
from .normalize import normalize_for_lowering


class LoweringError(SPLError):
    """The formula cannot be lowered (unexpected stage shape)."""


def is_perm_stage(e: Expr) -> bool:
    """Is this pipeline stage pure data movement?

    Vector constructs count: an :class:`InRegisterTranspose` is a (lane)
    permutation and ``VecTensor(P, ν)`` of a permutation ``P`` moves whole
    ν-blocks — both fold into pending gather tables like any scalar
    permutation (their ``apply`` is exact, so :func:`source_table` works).
    """
    if is_permutation_expr(e):
        return True
    if isinstance(e, InRegisterTranspose):
        return True
    if isinstance(e, VecTensor):
        return is_perm_stage(e.child)
    if isinstance(e, ParTensor):
        return is_perm_stage(e.child)
    return False


def is_diag_stage(e: Expr) -> bool:
    """Is this pipeline stage a pointwise scaling?"""
    if isinstance(e, (Diag, DiagFunc, Twiddle, VecDiag)):
        return True
    if isinstance(e, ParDirectSum):
        return all(is_diag_stage(b) for b in e.blocks)
    if isinstance(e, ParTensor):
        return is_diag_stage(e.child)
    if isinstance(e, VecTensor):
        return is_diag_stage(e.child)
    if isinstance(e, Tensor):
        return all(isinstance(f, I) or is_diag_stage(f) for f in e.factors)
    return False


@dataclass
class _LoopSpec:
    gather: np.ndarray
    scatter: np.ndarray
    kernel: Expr
    proc: Optional[int]
    nu: int = 1


def _body_loops(e: Expr, offset: int) -> list[_LoopSpec]:
    """Loops of a simple (non-parallel) stage body at a global offset."""
    if isinstance(e, VecTensor):
        # A ⊗v I_ν ≡ A ⊗ I_ν with the lane axis innermost: the untagged
        # tensor lowers as usual (trailing I_ν lands in the loop's fastest
        # row axis, so ν consecutive iterations read/write ν consecutive
        # addresses) and the loop records ν for the C emitters.
        return [
            _LoopSpec(s.gather, s.scatter, s.kernel, s.proc, nu=e.nu)
            for s in _body_loops(e.untag(), offset)
        ]
    if isinstance(e, Tensor):
        factors = list(e.factors)
        m = r = 1
        while factors and isinstance(factors[0], I):
            m *= factors[0].n
            factors.pop(0)
        while factors and isinstance(factors[-1], I):
            r *= factors[-1].n
            factors.pop()
        if len(factors) != 1:
            raise LoweringError(
                f"stage body {e!r} has {len(factors)} kernels; "
                "normalization should have split it"
            )
        kern = factors[0]
        k = kern.cols
        # iteration (i, j), i < m, j < r: indices offset + i*k*r + j + r*t
        i = np.arange(m, dtype=np.intp)[:, None, None]
        j = np.arange(r, dtype=np.intp)[None, :, None]
        t = np.arange(k, dtype=np.intp)[None, None, :]
        idx = (offset + i * k * r + j + r * t).reshape(m * r, k)
        return [_LoopSpec(idx, idx.copy(), kern, None)]
    # bare kernel
    k = e.cols
    idx = (offset + np.arange(k, dtype=np.intp)).reshape(1, k)
    return [_LoopSpec(idx, idx.copy(), e, None)]


def _stage_loops(e: Expr) -> tuple[list[_LoopSpec], bool]:
    """All loops of a compute stage; returns (loops, parallel?)."""
    if isinstance(e, ParTensor):
        bs = e.child.cols
        loops: list[_LoopSpec] = []
        for i in range(e.p):
            for spec in _body_loops(e.child, offset=i * bs):
                loops.append(
                    _LoopSpec(spec.gather, spec.scatter, spec.kernel,
                              proc=i, nu=spec.nu)
                )
        return loops, True
    if isinstance(e, ParDirectSum):
        bs = e.blocks[0].cols
        loops = []
        for i, b in enumerate(e.blocks):
            for spec in _body_loops(b, offset=i * bs):
                loops.append(
                    _LoopSpec(spec.gather, spec.scatter, spec.kernel,
                              proc=i, nu=spec.nu)
                )
        return loops, True
    return _body_loops(e, offset=0), False


def _explicit_move_stage(
    n: int,
    src: np.ndarray,
    scale: Optional[np.ndarray],
    procs: Optional[int],
    name: str,
) -> Stage:
    """An explicit permutation/scaling pass (un-merged data movement)."""
    gather = src.reshape(n, 1)
    scatter = np.arange(n, dtype=np.intp).reshape(n, 1)
    pre = None if scale is None else scale[src].reshape(n, 1)
    if procs and procs > 1:
        chunk = n // procs
        loops = []
        for i in range(procs):
            lo, hi = i * chunk, (i + 1) * chunk if i < procs - 1 else n
            loops.append(
                BlockLoop(
                    kernel=I(1),
                    gather=gather[lo:hi],
                    scatter=scatter[lo:hi],
                    pre_scale=None if pre is None else pre[lo:hi],
                    proc=i,
                )
            )
        return Stage(loops, parallel=True, name=name)
    loop = BlockLoop(
        kernel=I(1), gather=gather, scatter=scatter, pre_scale=pre
    )
    return Stage([loop], parallel=False, name=name)


def lower(
    expr: Expr,
    merge_permutations: bool = True,
    merge_diagonals: bool = True,
    copy_procs: Optional[int] = None,
    validate: bool = False,
    barrier_mu: int = 1,
) -> SigmaProgram:
    """Lower a formula to a Sigma-SPL loop program.

    Parameters
    ----------
    merge_permutations / merge_diagonals:
        Fold permutations / diagonals into adjacent loops (default).  With
        ``False`` they become explicit passes (six-step style).
    copy_procs:
        Parallelize explicit passes over this many processors.
    validate:
        Run the O(n log n) structural validation after building.
    barrier_mu:
        Granularity of the barrier-elision disjointness check
        (:meth:`SigmaProgram.analyze_barriers`): 1 (default) elides on
        element disjointness; the machine's cache line length elides only
        line-disjoint chains (no unsynchronized false sharing).  The
        frontend passes the target µ.

    Emits a ``sigma.lower`` span plus ``sigma.stages`` / ``sigma.barriers``
    / ``sigma.barriers_elided`` counters describing the built pipeline.
    """
    tr = get_tracer()
    with tr.span("sigma.lower", "sigma") as span:
        program = _lower_impl(
            expr, merge_permutations, merge_diagonals, copy_procs, validate,
            barrier_mu,
        )
        if tr.enabled:
            barriers = program.barrier_count()
            elided = len(program.stages) - barriers
            span.set(
                size=program.size,
                stages=len(program.stages),
                barriers=barriers,
            )
            tr.count("sigma.stages", len(program.stages))
            tr.count("sigma.barriers_inserted", barriers)
            tr.count("sigma.barriers_elided", elided)
    return program


def _lower_impl(
    expr: Expr,
    merge_permutations: bool,
    merge_diagonals: bool,
    copy_procs: Optional[int],
    validate: bool,
    barrier_mu: int = 1,
) -> SigmaProgram:
    if isinstance(expr, SMP):
        raise LoweringError("formula still carries smp() tags; parallelize first")
    expr = normalize_for_lowering(expr)
    n = expr.rows
    factors = list(expr.factors) if isinstance(expr, Compose) else [expr]

    stages: list[Stage] = []
    pend_src: Optional[np.ndarray] = None  # pending permutation source table
    pend_scale: Optional[np.ndarray] = None  # pending multiplier (source pos)

    def flush_pending_as_stage(name: str) -> None:
        nonlocal pend_src, pend_scale
        if pend_src is None and pend_scale is None:
            return
        src = pend_src if pend_src is not None else np.arange(n, dtype=np.intp)
        stages.append(
            _explicit_move_stage(n, src, pend_scale, copy_procs, name)
        )
        pend_src = pend_scale = None

    for f in reversed(factors):  # rightmost factor applies first
        if is_perm_stage(f) and f.rows == n:
            s = source_table(f)
            if not merge_permutations:
                flush_pending_as_stage("explicit-perm")
                stages.append(
                    _explicit_move_stage(n, s, None, copy_procs, "explicit-perm")
                )
                continue
            pend_src = s if pend_src is None else pend_src[s]
            continue
        if is_diag_stage(f) and f.rows == n:
            d = diag_values(f)
            if not merge_diagonals:
                flush_pending_as_stage("pre-diag")
                stages.append(
                    _explicit_move_stage(
                        n,
                        np.arange(n, dtype=np.intp),
                        d,
                        copy_procs,
                        "explicit-diag",
                    )
                )
                continue
            if pend_scale is None:
                pend_scale = np.ones(n, dtype=COMPLEX)
            if pend_src is None:
                pend_scale = pend_scale * d
            else:
                pend_scale[pend_src] = pend_scale[pend_src] * d
            continue

        # compute stage: fold pending into gathers
        specs, parallel = _stage_loops(f)
        loops = []
        for spec in specs:
            gather = spec.gather
            pre = None
            if pend_src is not None:
                gather = pend_src[gather]
            if pend_scale is not None:
                pre = pend_scale[gather]
            loops.append(
                BlockLoop(
                    kernel=spec.kernel,
                    gather=gather,
                    scatter=spec.scatter,
                    pre_scale=pre,
                    proc=spec.proc,
                    nu=spec.nu,
                )
            )
        pend_src = pend_scale = None
        stages.append(
            Stage(loops, parallel=parallel, name=type(f).__name__)
        )

    # leftover pending folds into the last stage's scatter (or becomes an
    # explicit pass when there is no compute stage at all)
    if pend_src is not None or pend_scale is not None:
        if stages:
            src = pend_src if pend_src is not None else np.arange(n, dtype=np.intp)
            inv = invert_table(src)
            last = stages[-1]
            for lp in last.loops:
                if pend_scale is not None:
                    extra = pend_scale[lp.scatter]
                    lp.post_scale = (
                        extra if lp.post_scale is None else lp.post_scale * extra
                    )
                lp.scatter = inv[lp.scatter]
        else:
            flush_pending_as_stage("explicit-perm")

    program = SigmaProgram(size=n, stages=stages)
    program.analyze_barriers(mu=barrier_mu)
    if validate:
        program.validate()
    return program
