"""Pre-lowering normalization: shape formulas into flat stage pipelines.

Lowering wants the formula as ``Compose(stage_k, ..., stage_1)`` where every
stage is *simple*: a permutation expression, a diagonal expression, or a
(possibly ``ParTensor``-wrapped) tensor product ``I_m (x) K (x) I_r`` with a
single kernel ``K``.  The rules here are classical SPL identities:

* parallel fission:  ``I_p (x)|| (A B) = (I_p (x)|| A)(I_p (x)|| B)``
* tensor/compose distribution:  ``I_m (x) (A B) = (I_m (x) A)(I_m (x) B)``
  and ``(A B) (x) I_r = (A (x) I_r)(B (x) I_r)``
* tensor splitting:  ``A (x) B = (A (x) I)(I (x) B)`` for non-identity A, B

None of them change the denoted matrix (tested), only the loop structure.
"""

from __future__ import annotations

from ..spl.expr import Compose, Expr, Tensor
from ..spl.matrices import I
from ..spl.parallel import ParTensor
from ..vector.constructs import VecTensor
from ..rewrite.pattern import is_permutation_expr
from ..rewrite.simplify import simplify


def _is_identity(e: Expr) -> bool:
    return isinstance(e, I)


def _split_tensor_factors(e: Tensor) -> tuple[int, list[Expr], int]:
    """Split flattened tensor factors into (leading I size, cores, trailing I size)."""
    factors = list(e.factors)
    m = r = 1
    while factors and _is_identity(factors[0]):
        m *= factors[0].n
        factors.pop(0)
    while factors and _is_identity(factors[-1]):
        r *= factors[-1].n
        factors.pop()
    return m, factors, r


def _normalize(e: Expr) -> Expr:
    # Normalize children first so fission results are already simple.
    if e.children:
        e = e.rebuild(*(_normalize(c) for c in e.children))

    if isinstance(e, ParTensor) and isinstance(e.child, Compose):
        # parallel fission
        return Compose(*(ParTensor(e.p, f) for f in e.child.factors))

    if isinstance(e, VecTensor) and isinstance(e.child, Compose):
        # vector fission: (A B) ⊗v I_ν = (A ⊗v I_ν)(B ⊗v I_ν)
        return Compose(*(VecTensor(f, e.nu) for f in e.child.factors))

    if isinstance(e, Tensor) and not is_permutation_expr(e):
        m, cores, r = _split_tensor_factors(e)
        if len(cores) == 1 and isinstance(cores[0], Compose):
            # I_m (x) (A B ...) (x) I_r  ->  product of per-factor tensors
            inner = cores[0]
            factors = []
            for f in inner.factors:
                parts: list[Expr] = []
                if m > 1:
                    parts.append(I(m))
                parts.append(f)
                if r > 1:
                    parts.append(I(r))
                factors.append(
                    _normalize(Tensor(*parts) if len(parts) > 1 else parts[0])
                )
            return Compose(*factors)
        if len(cores) > 1:
            # A (x) B (with identities around) -> (A (x) I)(I (x) B) chain
            factors = []
            left = m
            mid_sizes = [c.rows for c in cores]
            for idx, core in enumerate(cores):
                before = left
                after = r
                for c in cores[:idx]:
                    before *= c.rows
                for c in cores[idx + 1 :]:
                    after *= c.cols
                parts: list[Expr] = []
                if before > 1:
                    parts.append(I(before))
                parts.append(core)
                if after > 1:
                    parts.append(I(after))
                factors.append(
                    _normalize(Tensor(*parts) if len(parts) > 1 else parts[0])
                )
            return Compose(*factors)

    return e


def normalize_for_lowering(expr: Expr) -> Expr:
    """Normalize to a flat pipeline of simple stages (fixpoint)."""
    prev = None
    cur = simplify(expr)
    for _ in range(64):
        if cur == prev:
            return cur
        prev = cur
        cur = simplify(_normalize(cur))
    return cur
