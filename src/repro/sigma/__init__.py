"""Sigma-SPL: loop-level intermediate representation and loop merging."""

from .index_map import (
    GridForm,
    SliceForm,
    diag_values,
    invert_table,
    recover_grid,
    recover_slice,
    source_table,
)
from .loops import BlockLoop, SigmaProgram, SigmaValidationError, Stage
from .lower import LoweringError, is_diag_stage, is_perm_stage, lower
from .normalize import normalize_for_lowering

__all__ = [
    "BlockLoop",
    "GridForm",
    "LoweringError",
    "SigmaProgram",
    "SigmaValidationError",
    "SliceForm",
    "Stage",
    "diag_values",
    "invert_table",
    "is_diag_stage",
    "is_perm_stage",
    "lower",
    "normalize_for_lowering",
    "recover_grid",
    "recover_slice",
    "source_table",
]
