"""repro.faults: deterministic fault injection for the serving stack.

The runtime/serving layers are threaded with *named injection points*
(:data:`~repro.faults.plan.INJECTION_POINTS`) — worker stall, worker
crash, slow plan build, queue-full burst, dispatcher crash, connection
reset, poisoned payload.  Each point consults the process-wide
:class:`FaultPlan`, which is a no-op :class:`NullFaultPlan` by default;
tests install a real plan with :func:`fault_plan` and ``repro serve
--chaos`` installs one from a CLI spec (:func:`parse_chaos_spec`).

::

    from repro.faults import FaultPlan, FaultSpec, fault_plan

    with fault_plan(FaultPlan([
        FaultSpec("runtime.worker_crash", rate=1.0, max_fires=1),
    ])) as fp:
        ...                      # next pthreads execution loses a worker
    fp.fires("runtime.worker_crash")   # -> 1

Everything downstream (the supervisor, pool rebuilds, degradation to the
sequential runtime, client retry) is exercised by ``tests/serve/test_chaos.py``
against these points.  See ``docs/serving.md``.
"""

from .plan import (
    FaultInjected,
    FaultPlan,
    FaultSpec,
    INJECTION_POINTS,
    NULL_FAULT_PLAN,
    NullFaultPlan,
    fault_plan,
    get_fault_plan,
    parse_chaos_spec,
    set_fault_plan,
)

__all__ = [
    "FaultInjected",
    "FaultPlan",
    "FaultSpec",
    "INJECTION_POINTS",
    "NULL_FAULT_PLAN",
    "NullFaultPlan",
    "fault_plan",
    "get_fault_plan",
    "parse_chaos_spec",
    "set_fault_plan",
]
