"""The :class:`FaultPlan` at the heart of :mod:`repro.faults`.

Design mirrors :mod:`repro.trace.tracer`: a process-wide *active plan*
defaults to a :class:`NullFaultPlan` whose probes are empty methods, so
instrumented production paths pay one attribute lookup when no chaos is
configured.  Install a real plan with :func:`set_fault_plan` (global) or
:func:`fault_plan` (scoped) and every registered injection point starts
consulting it.

Determinism: firing decisions come from one seeded :class:`random.Random`
consumed under a lock in evaluation order, so a single-threaded test
replays identically, and every spec supports ``max_fires`` so tests can
inject *exactly one* worker crash (or N connection resets) regardless of
rates and interleaving.
"""

from __future__ import annotations

import contextlib
import random
import threading
import time
from dataclasses import dataclass
from typing import Iterator, Optional

from ..trace import get_tracer


class FaultInjected(RuntimeError):
    """An artificial failure raised by an active :class:`FaultPlan`."""

    def __init__(self, point: str):
        super().__init__(f"injected fault at {point!r}")
        self.point = point


#: every injection point wired into the production code, with the site
#: that consults it — specs for unknown points are rejected up front
INJECTION_POINTS: dict[str, str] = {
    "runtime.worker_stall": "PThreadsRuntime worker sleeps before its stages",
    "runtime.worker_crash": "PThreadsRuntime worker thread dies mid-job",
    "mp.worker_crash": "ProcessPoolRuntime worker process is killed mid-job",
    "plan.slow": "PlanCache leader sleeps before building a plan",
    "serve.queue_burst": "FFTService admission pretends the queue is full",
    "serve.dispatcher_crash": "FFTService dispatcher thread dies",
    "net.conn_reset": "FFTServer handler resets the TCP connection",
    "codegen.compile_fail": "compiled backend's gcc invocation is made to "
    "fail, exercising the registry's NumPy fallback",
    "net.poison_payload": "FFTServer corrupts one request into an error",
    "check.overlapping_write": "repro.check sabotages a plan with a "
    "cross-processor write/write overlap (negative checker test)",
    "check.misaligned_split": "repro.check sabotages a plan with a "
    "mu-misaligned processor split (negative checker test)",
    "shard.worker_crash": "ShardFleet supervisor SIGKILLs a live shard "
    "child, exercising ejection, failover, and restart",
    "shard.route_flap": "ShardRouter routes a request to the owner's "
    "successor instead of the owner (any shard must serve any key)",
    "hunt.exec_corrupt": "repro.hunt numeric oracle corrupts one output "
    "element before comparison (end-to-end proof the hunt catches wrong "
    "answers)",
    "hunt.plan_sabotage": "repro.hunt dynamic-check oracle hands the "
    "checker a mu-misaligned-split copy of the plan (end-to-end proof "
    "the hunt catches Definition 1 violations)",
    "tune.swap_corrupt": "Tuner plan hot-swap fails mid-commit; the "
    "PlanCache must keep serving the old plan with zero dropped "
    "requests",
}


@dataclass
class FaultSpec:
    """One injection point's activation rule.

    ``rate`` is the per-evaluation firing probability; ``delay_s`` is the
    sleep length for stall-type points (ignored by the others);
    ``max_fires`` caps total fires (None = unbounded).
    """

    point: str
    rate: float = 1.0
    delay_s: float = 0.0
    max_fires: Optional[int] = None

    def __post_init__(self):
        if self.point not in INJECTION_POINTS:
            raise ValueError(
                f"unknown injection point {self.point!r}; "
                f"known: {sorted(INJECTION_POINTS)}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        if self.delay_s < 0:
            raise ValueError(f"delay_s must be >= 0, got {self.delay_s}")


class FaultPlan:
    """A set of :class:`FaultSpec` rules evaluated at injection points.

    Thread-safe; ``stop()`` deactivates every point at once (the chaos
    test's "faults stop" switch) while keeping fire counters readable.
    """

    #: production probes check this before doing any work
    enabled: bool = True

    def __init__(self, specs: tuple | list = (), seed: int = 0):
        self._specs: dict[str, FaultSpec] = {}
        self._lock = threading.Lock()
        self._rng = random.Random(seed)
        self._fires: dict[str, int] = {}
        self._evals: dict[str, int] = {}
        self._active = True
        for spec in specs:
            self.add(spec)

    # -- configuration -------------------------------------------------------

    def add(self, spec: FaultSpec | str, **kw) -> "FaultPlan":
        """Register a spec (or build one from ``point, **kw``); chainable."""
        if isinstance(spec, str):
            spec = FaultSpec(spec, **kw)
        with self._lock:
            self._specs[spec.point] = spec
            self._fires.setdefault(spec.point, 0)
            self._evals.setdefault(spec.point, 0)
        return self

    def stop(self) -> None:
        """Deactivate every injection point (counters survive)."""
        with self._lock:
            self._active = False

    def resume(self) -> None:
        with self._lock:
            self._active = True

    @property
    def active(self) -> bool:
        with self._lock:
            return self._active

    # -- probes (called from production code) --------------------------------

    def should_fire(self, point: str) -> Optional[FaultSpec]:
        """Evaluate ``point`` once; the spec if it fires, else None."""
        with self._lock:
            spec = self._specs.get(point)
            if spec is None or not self._active:
                return None
            self._evals[point] += 1
            if spec.max_fires is not None and self._fires[point] >= spec.max_fires:
                return None
            if spec.rate < 1.0 and self._rng.random() >= spec.rate:
                return None
            self._fires[point] += 1
        get_tracer().count("faults.injected", 1, point=point)
        return spec

    def fired(self, point: str) -> bool:
        """True exactly when ``point`` fires on this evaluation."""
        return self.should_fire(point) is not None

    def stall(self, point: str) -> bool:
        """Sleep out the spec's ``delay_s`` if ``point`` fires."""
        spec = self.should_fire(point)
        if spec is None:
            return False
        if spec.delay_s > 0:
            time.sleep(spec.delay_s)
        return True

    def raise_if(self, point: str) -> None:
        """Raise :class:`FaultInjected` if ``point`` fires."""
        if self.fired(point):
            raise FaultInjected(point)

    # -- observability -------------------------------------------------------

    def fires(self, point: str) -> int:
        with self._lock:
            return self._fires.get(point, 0)

    def snapshot(self) -> dict:
        """JSON-able per-point counters (the ``health`` op embeds this)."""
        with self._lock:
            return {
                point: {
                    "rate": spec.rate,
                    "delay_s": spec.delay_s,
                    "max_fires": spec.max_fires,
                    "evaluations": self._evals.get(point, 0),
                    "fires": self._fires.get(point, 0),
                }
                for point, spec in self._specs.items()
            }


class NullFaultPlan(FaultPlan):
    """The default inactive plan: every probe is a constant no-op."""

    enabled = False

    def __init__(self):
        super().__init__()

    def add(self, spec, **kw):  # pragma: no cover - misuse guard
        raise TypeError("cannot add specs to the null fault plan; "
                        "install a real FaultPlan first")

    def should_fire(self, point: str) -> None:
        return None

    def fired(self, point: str) -> bool:
        return False

    def stall(self, point: str) -> bool:
        return False

    def raise_if(self, point: str) -> None:
        return None


#: the process-wide inactive default
NULL_FAULT_PLAN = NullFaultPlan()

_active_plan: FaultPlan = NULL_FAULT_PLAN


def get_fault_plan() -> FaultPlan:
    """The process-wide active plan (the null plan unless chaos is on)."""
    return _active_plan


def set_fault_plan(plan: Optional[FaultPlan]) -> FaultPlan:
    """Install ``plan`` globally (None restores the null plan); returns it."""
    global _active_plan
    _active_plan = plan if plan is not None else NULL_FAULT_PLAN
    return _active_plan


@contextlib.contextmanager
def fault_plan(plan: Optional[FaultPlan] = None) -> Iterator[FaultPlan]:
    """Scoped installation: ``with fault_plan(FaultPlan([...])) as fp:``."""
    installed = set_fault_plan(plan if plan is not None else FaultPlan())
    try:
        yield installed
    finally:
        set_fault_plan(NULL_FAULT_PLAN)


def parse_chaos_spec(text: str, seed: int = 0) -> FaultPlan:
    """Parse the CLI's ``--chaos`` string into a :class:`FaultPlan`.

    Comma-separated ``point:rate[:delay_ms]`` items, e.g.::

        runtime.worker_crash:0.1,net.conn_reset:0.05,plan.slow:1.0:50
    """
    plan = FaultPlan(seed=seed)
    for item in text.split(","):
        item = item.strip()
        if not item:
            continue
        parts = item.split(":")
        if len(parts) not in (2, 3):
            raise ValueError(
                f"bad chaos item {item!r}; expected point:rate[:delay_ms]"
            )
        point, rate = parts[0], float(parts[1])
        delay_s = float(parts[2]) / 1e3 if len(parts) == 3 else 0.0
        plan.add(FaultSpec(point=point, rate=rate, delay_s=delay_s))
    if not plan.snapshot():
        raise ValueError(f"chaos spec {text!r} names no injection points")
    return plan
