"""The online tuner: production telemetry back into the plan cache.

A :class:`Tuner` rides inside a live :class:`~repro.serve.FFTService`.
Each tick it drains the service's per-plan observation window
(:meth:`repro.serve.metrics.LatencyRecorder.drain`), and then:

* **records** every window into the shared :class:`~repro.wisdom.Wisdom`
  store (versioned per-lane observation records), so the whole fleet
  sees what each plan measured in production;
* **auto-tunes the batcher** toward a p99 target with AIMD: a window
  whose p99 overshoots the target halves the batching window
  (multiplicative decrease), one comfortably under it grows the window
  and batch bound (additive-ish increase) to win throughput back —
  the dispatcher re-reads both knobs every loop, so adjustments apply
  live with no restart;
* **re-searches** hot plan keys whose observed median regressed past
  ``regress_factor`` × their best window, using the measured cost model
  (:func:`~repro.tune.measured_search`), and **hot-swaps** the winner
  into the :class:`~repro.serve.plan_cache.PlanCache`.

The swap protocol is zero-drop by construction: the cache replacement is
atomic under the cache lock, defers (rather than races) when a
single-flight build is in progress for the key, and batches already
executing hold their own plan reference — no request ever observes a
half-installed plan.  The ``tune.swap_corrupt`` injection point fires
*before* the commit, so a chaos-injected mid-swap failure leaves the old
plan serving and only increments ``swap_failures``.

The process runtime plans from picklable specs inside its workers and
bypasses the in-process PlanCache, so hot-swap covers the sequential and
pthreads lanes; process-lane observations still flow into wisdom.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Optional

from ..faults import FaultInjected
from ..frontend import generate_fft
from ..serve.metrics import latency_summary, percentile
from ..serve.plan_cache import CachedPlan, PlanKey
from ..trace import get_tracer
from .measure import measured_search


@dataclass
class TunerConfig:
    """Knobs of one background :class:`Tuner`."""

    interval_s: float = 0.5        #: tick period of the background thread
    p99_target_ms: Optional[float] = None  #: batcher-knob goal; None = off
    regress_factor: float = 1.5    #: window p50 vs best-ever triggering retune
    min_requests: int = 16         #: window size before a key is judged
    search_budget: int = 4         #: measured-search candidates per retune
    search_repeats: int = 2        #: timer repeats per candidate
    min_window_s: float = 0.0      #: batching window floor
    max_window_s: float = 0.05     #: batching window ceiling
    min_batch: int = 1             #: max_batch floor
    max_batch: int = 256           #: max_batch ceiling
    headroom: float = 0.7          #: grow knobs only under this × target


class Tuner:
    """Background autotuner bound to one :class:`~repro.serve.FFTService`.

    ``start()`` launches the daemon tick thread; ``close()`` stops and
    joins it.  ``tick()`` and ``retune()`` are public and thread-safe so
    tests and the bench lane can drive the tuner deterministically (a
    forced mid-run ``retune`` under load is exactly the acceptance
    scenario).
    """

    def __init__(self, service, config: Optional[TunerConfig] = None,
                 wisdom=None):
        self.service = service
        self.config = config or TunerConfig()
        self.wisdom = wisdom
        self._stop = threading.Event()
        self._lock = threading.Lock()
        #: best observed window p50 (ms) per plan key — regression baseline
        self._best_p50: dict[PlanKey, float] = {}
        self._metrics = {
            "ticks": 0,
            "windows_observed": 0,
            "retunes": 0,
            "swaps": 0,
            "swap_failures": 0,
            "swaps_deferred": 0,
            "knob_adjustments": 0,
            "last_p99_ms": None,
        }
        self._thread = threading.Thread(
            target=self._loop, name="fft-serve-tuner", daemon=True
        )

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        self._thread.start()

    def close(self) -> None:
        self._stop.set()
        if self._thread.is_alive():
            self._thread.join(timeout=10)

    def _loop(self) -> None:
        while not self._stop.wait(self.config.interval_s):
            try:
                self.tick()
            except Exception:  # noqa: BLE001 - the tuner must never kill serve
                get_tracer().count("tune.tick_errors", 1)

    # -- observation + control ----------------------------------------------

    def snapshot(self) -> dict:
        """JSON-able tuner state for the ``stats`` endpoint."""
        with self._lock:
            m = dict(self._metrics)
        cfg = self.service.config
        m["window_ms"] = cfg.window_s * 1e3
        m["max_batch"] = cfg.max_batch
        m["p99_target_ms"] = self.config.p99_target_ms
        m["tracked_keys"] = len(self._best_p50)
        return m

    def _lane_runtime(self, key: PlanKey) -> str:
        """The executor-lane name a key's latency is attributed to."""
        if key.threads <= 1:
            return "sequential"
        return (
            "process" if self.service.config.runtime == "process"
            else "pthreads"
        )

    def tick(self) -> list[PlanKey]:
        """One observe/record/adjust/retune pass; returns retuned keys."""
        with self._lock:
            drained = self.service.tune_window.drain()
            self._metrics["ticks"] += 1
            all_samples: list[float] = []
            regressed: list[PlanKey] = []
            for key, samples in drained.items():
                if not samples:
                    continue
                self._metrics["windows_observed"] += 1
                all_samples.extend(samples)
                summary = {"requests": len(samples),
                           **latency_summary(samples)}
                if self.wisdom is not None:
                    self.wisdom.record_observation(
                        key.n, key.threads, key.mu,
                        self.service.config.backend,
                        self._lane_runtime(key), summary,
                    )
                if len(samples) < self.config.min_requests:
                    continue
                p50 = summary["p50_ms"]
                best = self._best_p50.get(key)
                if best is None or p50 < best:
                    self._best_p50[key] = p50
                elif p50 > best * self.config.regress_factor:
                    regressed.append(key)
            self._adjust_knobs_locked(all_samples)
            for key in regressed:
                self._retune_locked(key)
            return regressed

    def _adjust_knobs_locked(self, samples: list[float]) -> None:
        """AIMD on (window_s, max_batch) toward the p99 target."""
        target = self.config.p99_target_ms
        if target is None or not samples:
            return
        p99_ms = percentile(sorted(samples), 0.99) * 1e3
        self._metrics["last_p99_ms"] = p99_ms
        cfg = self.service.config
        c = self.config
        window, batch = cfg.window_s, cfg.max_batch
        if p99_ms > target:
            # over target: shed latency fast (multiplicative decrease)
            window = max(c.min_window_s, cfg.window_s * 0.5)
        elif p99_ms < c.headroom * target:
            # comfortable headroom: buy throughput back (gentle increase)
            window = min(c.max_window_s, max(cfg.window_s, 0.0005) * 1.25)
            batch = min(c.max_batch, cfg.max_batch + max(1,
                                                         cfg.max_batch // 4))
        batch = max(c.min_batch, batch)
        if window != cfg.window_s or batch != cfg.max_batch:
            cfg.window_s = window
            cfg.max_batch = batch
            self._metrics["knob_adjustments"] += 1
            get_tracer().count("tune.knob_adjustments", 1)

    # -- retune + hot-swap ----------------------------------------------------

    def retune(self, key: PlanKey) -> bool:
        """Measured re-search + hot-swap for ``key`` (thread-safe).

        Public so load benches can force a mid-run swap under traffic;
        the background tick uses the same path.  Returns True when a new
        plan was committed to the cache.
        """
        with self._lock:
            return self._retune_locked(key)

    def _retune_locked(self, key: PlanKey) -> bool:
        tr = get_tracer()
        self._metrics["retunes"] += 1
        tr.count("tune.retunes", 1, n=key.n)
        backend = self.service.config.backend
        # rank candidates in-process on the sequential runtime: cheap,
        # safe next to live traffic, and strategy order carries over
        result = measured_search(
            key.n, threads=key.threads, mu=key.mu, backend=backend,
            runtime="sequential", budget=self.config.search_budget,
            repeats=self.config.search_repeats, wisdom=self.wisdom,
        )
        best = result.best
        # the winning candidate may be scalar or ν-way (the compiled
        # backend's search space carries both); the rebuilt plan follows it
        program = generate_fft(
            key.n, threads=key.threads, mu=key.mu,
            strategy=best.strategy, min_leaf=best.min_leaf, nu=best.nu,
        )
        from ..codegen.registry import resolve_backend

        exec_backend = resolve_backend(backend)
        stages = exec_backend.build_stages(program.program)
        plan = CachedPlan(
            key=key, program=program, stages=stages,
            backend=exec_backend.name,
        )
        try:
            committed = self.service.plans.swap(key, plan)
        except FaultInjected:
            # chaos: the swap died mid-commit; the cache still holds the
            # old plan, so traffic degrades gracefully to "not retuned"
            self._metrics["swap_failures"] += 1
            tr.count("tune.swap_failures", 1)
            return False
        if committed:
            self._metrics["swaps"] += 1
            tr.count("tune.swaps", 1, n=key.n)
            # the new plan starts a fresh regression baseline
            self._best_p50.pop(key, None)
        else:
            # a single-flight build is in progress for this key; the
            # tuner defers and will retry on a later tick
            self._metrics["swaps_deferred"] += 1
            tr.count("tune.swaps_deferred", 1)
        return committed
