"""repro.tune: online autotuning — measured search, live wisdom, hot-swap.

The subsystem closes the paper's feedback loop against *production*
telemetry instead of an offline timer (see ``docs/tuning.md``):

* :func:`measured_search` — time real candidates on the executor
  registry (numpy | compiled | simulator × sequential | pthreads |
  process), FFTW-planner style, with a budget and a ``REPRO_SEED``-
  stable candidate order; rankings persist as versioned
  :class:`repro.wisdom.Wisdom` tune records.
* :class:`Tuner` — a background thread inside a live
  :class:`~repro.serve.FFTService`: drains per-plan latency windows,
  records fleet-shared observations, AIMD-tunes the batcher knobs
  (``window_ms``, ``max_batch``) toward a p99 target, and re-searches
  regressed plans, hot-swapping the winner through the
  :class:`~repro.serve.plan_cache.PlanCache` with zero dropped or
  misrouted in-flight requests.
* :func:`run_tune_loadgen` — the ``repro loadgen --tune`` lane: a
  deliberately mistuned server measurably improves over its own run
  lifetime (``BENCH_tune.json``), including a forced mid-run hot-swap
  under load (and an inverted ``tune.swap_corrupt`` chaos mode).
"""

from .loadgen import TuneLoadgenConfig, render_tune_report, run_tune_loadgen
from .measure import (
    Candidate,
    Measurement,
    MeasuredSearchResult,
    candidate_space,
    measured_search,
)
from .tuner import Tuner, TunerConfig

__all__ = [
    "Candidate",
    "Measurement",
    "MeasuredSearchResult",
    "TuneLoadgenConfig",
    "Tuner",
    "TunerConfig",
    "candidate_space",
    "measured_search",
    "render_tune_report",
    "run_tune_loadgen",
]
