"""Measured-backend search: time real candidates, FFTW-planner style.

The analytic cycle model (:func:`repro.search.dp.model_objective`) ranks
factorizations without touching hardware; this module is the other half
of the paper's feedback loop — candidates are *executed* on the real
executor registry (numpy | compiled | simulator × sequential | pthreads
| process) and ranked by best-of-``repeats`` wall-clock time, exactly
the way the serving layer will run them (stacked ``(batch, n)``
execution through :func:`repro.serve.batch_exec.run_batched`).

The candidate space is the cross product of breakdown strategies
(:data:`repro.rewrite.breakdown.RADIX_STRATEGIES`) and codelet leaf
bounds; the evaluation *order* is a seeded shuffle derived from
``REPRO_SEED`` (:mod:`repro.seeding`), so a truncated budget times a
stable, reproducible prefix rather than whatever ``dict`` order happens
to be.  Results feed :meth:`repro.wisdom.Wisdom.record_tuning`, the
versioned fleet-shared record the online :class:`~repro.tune.Tuner`
reads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..frontend import feasible_threads, generate_fft
from ..hunt.oracles import ExecutorPools
from ..rewrite.breakdown import RADIX_STRATEGIES
from ..search.timer import pseudo_mflops_from_seconds, time_batched_callable
from ..seeding import default_seed, derive_rng
from ..trace import get_tracer

#: runtimes a measured search can time against
RUNTIMES = ("sequential", "pthreads", "process")

#: codelet leaf bounds explored per strategy (in-process runtimes only;
#: the process runtime plans from a PlanSpec, which fixes the default)
LEAF_BOUNDS = (16, 32)

#: vector granularities explored when the backend compiles ν-wide code
NU_CHOICES = (1, 2, 4)


@dataclass(frozen=True)
class Candidate:
    """One point of the measured search space."""

    strategy: str
    min_leaf: int = 32
    #: vec(ν) granularity; only the compiled backend's emitted code
    #: changes with it, so the space carries ν > 1 only for ``compiled``
    nu: int = 1

    @property
    def label(self) -> str:
        tag = f"/v{self.nu}" if self.nu > 1 else ""
        return f"{self.strategy}/leaf{self.min_leaf}{tag}"


@dataclass
class Measurement:
    """One timed candidate: best-of-repeats seconds per batch application."""

    strategy: str
    min_leaf: int
    seconds: float
    batch: int = 1
    n: int = 0
    nu: int = 1

    @property
    def per_vector_ms(self) -> float:
        return self.seconds / max(1, self.batch) * 1e3

    @property
    def pseudo_mflops(self) -> float:
        if not self.n:
            return 0.0
        return pseudo_mflops_from_seconds(
            self.n, self.seconds / max(1, self.batch)
        )

    def to_json(self) -> dict:
        return {
            "strategy": self.strategy,
            "min_leaf": self.min_leaf,
            "nu": self.nu,
            "seconds": self.seconds,
            "per_vector_ms": self.per_vector_ms,
            "pseudo_mflops": self.pseudo_mflops,
        }


@dataclass
class MeasuredSearchResult:
    """Ranked outcome of one measured search (fastest first)."""

    n: int
    threads: int
    mu: int
    backend: str
    runtime: str
    batch: int
    repeats: int
    budget: int
    seed: int
    ranking: list[Measurement] = field(default_factory=list)

    @property
    def best(self) -> Measurement:
        return self.ranking[0]

    def record(self) -> dict:
        """The wisdom-persisted form (see ``Wisdom.record_tuning``)."""
        return {
            "best": self.best.to_json(),
            "ranking": [m.to_json() for m in self.ranking],
            "batch": self.batch,
            "repeats": self.repeats,
            "seed": self.seed,
        }

    def to_json(self) -> dict:
        return {
            "n": self.n,
            "threads": self.threads,
            "mu": self.mu,
            "backend": self.backend,
            "runtime": self.runtime,
            "budget": self.budget,
            **self.record(),
        }


def candidate_space(
    runtime: str = "sequential", backend: str = "numpy"
) -> list[Candidate]:
    """Every candidate a measured search may time, in a canonical order.

    Strategies are sorted by name so the space is stable across Python
    versions; the seeded shuffle in :func:`measured_search` decides
    which prefix a budget actually pays for.  The ``compiled`` backend
    adds the vec(ν) axis (:data:`NU_CHOICES`): scalar and ν-way plans
    compete on measured time; interpreted backends execute vectorized
    plans identically, so their space stays scalar.
    """
    strategies = sorted(RADIX_STRATEGIES)
    nus = NU_CHOICES if backend == "compiled" else (1,)
    if runtime == "process":
        # process workers regenerate plans from a PlanSpec, which carries
        # no leaf bound — only the strategy (and ν) axes are reachable
        return [Candidate(s, nu=nu) for s in strategies for nu in nus]
    return [
        Candidate(s, leaf, nu)
        for s in strategies
        for leaf in LEAF_BOUNDS
        for nu in nus
    ]


def _timed_fn(cand, n, t, mu, backend, runtime, pools, seq):
    """The callable a candidate is timed through, on its real executor."""
    from ..codegen.registry import resolve_backend
    from ..serve.batch_exec import run_batched

    if runtime == "process" and t > 1:
        from ..mp import PlanSpec

        spec = PlanSpec(
            n=n, threads=t, mu=mu, strategy=cand.strategy, backend=backend,
            nu=cand.nu,
        )
        pool = pools.process(t)
        return lambda X: pool.execute_spec(spec, X)[0]

    program = generate_fft(
        n, threads=t, mu=mu, strategy=cand.strategy, min_leaf=cand.min_leaf,
        nu=cand.nu,
    )
    stages = resolve_backend(backend).build_stages(program.program)
    rt = pools.pthreads(t) if runtime == "pthreads" and t > 1 else seq
    return lambda X: run_batched(stages, n, X, rt)[0]


def measured_search(
    n: int,
    threads: int = 1,
    mu: int = 4,
    backend: str = "numpy",
    runtime: str = "sequential",
    budget: int = 8,
    repeats: int = 3,
    batch: int = 1,
    seed: Optional[int] = None,
    pools: Optional[ExecutorPools] = None,
    wisdom=None,
) -> MeasuredSearchResult:
    """Time up to ``budget`` candidates on the real executor; rank them.

    Every candidate sees the identical deterministic input (derived from
    ``seed``, defaulting to ``$REPRO_SEED``), is warmed up once, and is
    timed best-of-``repeats`` with GC paused
    (:func:`repro.search.timer.time_batched_callable`).  ``pools`` lets
    a sweep share thread/process pools across searches; when omitted a
    private set is built and torn down.  Passing ``wisdom`` persists the
    ranking via :meth:`~repro.wisdom.Wisdom.record_tuning`.
    """
    if runtime not in RUNTIMES:
        raise ValueError(
            f"unknown runtime {runtime!r}; expected one of {RUNTIMES}"
        )
    if budget < 1:
        raise ValueError(f"budget must be >= 1, got {budget}")
    seed = default_seed() if seed is None else seed
    t = feasible_threads(n, threads, mu) if threads > 1 else 1

    space = candidate_space(runtime, backend)
    rng = derive_rng(seed, "tune-candidates", n, t, mu, backend, runtime)
    order = [space[i] for i in rng.permutation(len(space))][:budget]

    tr = get_tracer()
    own_pools = pools is None
    pools = pools or ExecutorPools()
    from ..smp import SequentialRuntime

    seq = SequentialRuntime()
    ranking: list[Measurement] = []
    try:
        with tr.span("tune.measured_search", "search", n=n, threads=t,
                     mu=mu, backend=backend, runtime=runtime,
                     budget=len(order)):
            for cand in order:
                fn = _timed_fn(cand, n, t, mu, backend, runtime, pools, seq)
                seconds = time_batched_callable(
                    fn, n, batch=batch, repeats=repeats,
                    rng=derive_rng(seed, "tune-input", n),
                )
                tr.count("tune.candidates_timed", 1, n=n)
                ranking.append(
                    Measurement(
                        strategy=cand.strategy,
                        min_leaf=cand.min_leaf,
                        seconds=seconds,
                        batch=batch,
                        n=n,
                        nu=cand.nu,
                    )
                )
    finally:
        seq.close()
        if own_pools:
            pools.close()

    ranking.sort(key=lambda m: m.seconds)
    result = MeasuredSearchResult(
        n=n, threads=t, mu=mu, backend=backend, runtime=runtime,
        batch=batch, repeats=repeats, budget=budget, seed=seed,
        ranking=ranking,
    )
    if wisdom is not None:
        wisdom.record_tuning(n, t, mu, backend, runtime, result.record())
    return result
