"""The ``repro loadgen --tune`` lane: prove autotuning pays off live.

One in-process server is started deliberately mistuned (a large batching
window) with the background :class:`~repro.tune.Tuner` enabled, then
driven by closed-loop pipelined clients through ``windows`` consecutive
measurement windows.  The run demonstrates the two tentpole claims:

* **the run improves over its own lifetime** — the tuner walks the
  batcher knobs toward the p99 target, so the last window's p99 drops
  (and throughput rises) versus the first; per-window numbers land in
  ``BENCH_tune.json``;
* **hot-swap loses nothing** — at the start of ``swap_window`` a forced
  measured re-search hot-swaps every hot plan *while traffic flows*;
  every response in the whole run is verified against ``np.fft``, so
  the report's integrity block proves zero lost acknowledged requests
  and zero wrong answers across the swap.

With ``chaos="tune.swap_corrupt:1.0"`` the same lane becomes the
inverted CI check: every swap attempt dies mid-commit, the tuner counts
``swap_failures``, and the integrity block must still be clean — the
old plan keeps serving.
"""

from __future__ import annotations

import contextlib
import json
import threading
import time
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..seeding import default_seed, derive_seed
from ..serve.client import RetryPolicy, ServeClient
from ..serve.loadgen import _LOADGEN_RETRY
from ..serve.metrics import latency_summary
from ..serve.server import FFTServer, graceful_shutdown
from ..serve.service import FFTService, ServeConfig


@dataclass
class TuneLoadgenConfig:
    sizes: tuple = (64, 128, 256)
    threads: int = 1
    mu: int = 4
    backend: str = "numpy"
    clients: int = 3
    pipeline: int = 8            #: in-flight requests per client
    windows: int = 6             #: consecutive measurement windows
    window_duration_s: float = 0.6
    p99_target_ms: float = 5.0   #: the tuner's latency goal
    initial_window_ms: float = 25.0  #: deliberately mistuned starting knob
    tune_interval_s: float = 0.15
    #: force measured re-search + hot-swap of every hot plan at the start
    #: of this window (0-based); -1 disables the forced swap
    swap_window: int = 2
    chaos: Optional[str] = None  #: e.g. "tune.swap_corrupt:1.0"
    chaos_seed: int = 0
    seed: int = field(default_factory=default_seed)
    output: Optional[str] = "BENCH_tune.json"


def _worker(wid: int, cfg: TuneLoadgenConfig, port: int,
            start: threading.Event, stop: threading.Event,
            records: list, errors: list[str]) -> None:
    """Closed-loop pipelined client; records (t_done, latency_s, ok)."""
    rng = np.random.default_rng(derive_seed(cfg.seed, "tune-loadgen", wid))
    recs: list[tuple[float, float, bool]] = []
    lost = 0
    try:
        client = ServeClient(
            "127.0.0.1", port,
            retry=RetryPolicy(
                attempts=_LOADGEN_RETRY.attempts,
                seed=derive_seed(cfg.seed, "tune-retry", wid),
            ),
        )
    except OSError as exc:
        errors.append(f"worker {wid}: connect failed: {exc}")
        records.append((recs, 0))
        return
    try:
        start.wait()
        i = 0
        while not stop.is_set():
            xs = []
            for j in range(cfg.pipeline):
                n = cfg.sizes[(wid + i + j) % len(cfg.sizes)]
                xs.append(
                    rng.standard_normal(n) + 1j * rng.standard_normal(n)
                )
            i += len(xs)
            try:
                outcomes = client.fft_pipeline(xs)
            except (ConnectionError, OSError):
                # connection died mid-burst: redial and replay this chunk
                # one at a time (fft is idempotent)
                outcomes = []
                for x in xs:
                    t0 = time.perf_counter()
                    try:
                        y = client.fft_retry(x, policy=_LOADGEN_RETRY)
                        outcomes.append((y, time.perf_counter() - t0, None))
                    except Exception as exc:  # noqa: BLE001 - counted
                        lost += 1
                        errors.append(f"worker {wid}: request lost: {exc}")
                        outcomes.append((None, 0.0, False))
            for x, (y, dt, err) in zip(xs, outcomes):
                if err is False:
                    continue  # already counted as lost above
                if err is not None:
                    if err.code not in _LOADGEN_RETRY.retry_codes:
                        lost += 1
                        errors.append(f"worker {wid}: {err}")
                        continue
                    time.sleep(err.retry_after or 0.005)
                    t0 = time.perf_counter()
                    try:
                        y = client.fft_retry(x, policy=_LOADGEN_RETRY)
                        dt = time.perf_counter() - t0
                    except Exception as exc:  # noqa: BLE001 - counted
                        lost += 1
                        errors.append(f"worker {wid}: request lost: {exc}")
                        continue
                ok = bool(np.allclose(y, np.fft.fft(x), atol=1e-6))
                recs.append((time.perf_counter(), dt, ok))
    except Exception as exc:  # noqa: BLE001 - surfaced in the report
        errors.append(f"worker {wid}: {exc}")
    finally:
        with contextlib.suppress(Exception):
            client.close()
        records.append((recs, lost))


def run_tune_loadgen(cfg: TuneLoadgenConfig) -> dict:
    """Run the tune lane end to end; returns (and optionally writes) the report."""
    from ..faults import fault_plan, parse_chaos_spec

    chaos_ctx = (
        fault_plan(parse_chaos_spec(cfg.chaos, seed=cfg.chaos_seed))
        if cfg.chaos else contextlib.nullcontext()
    )
    with chaos_ctx:
        return _run(cfg)


def _run(cfg: TuneLoadgenConfig) -> dict:
    service = FFTService(ServeConfig(
        threads=cfg.threads,
        mu=cfg.mu,
        backend=cfg.backend,
        window_s=cfg.initial_window_ms / 1e3,
        tune=True,
        tune_interval_s=cfg.tune_interval_s,
        p99_target_ms=cfg.p99_target_ms,
    ))
    server = FFTServer(("127.0.0.1", 0), service)
    port = server.server_address[1]
    server.serve_background()
    try:
        # warmup: build every plan once, verified, outside the windows
        probe = ServeClient("127.0.0.1", port)
        rng = np.random.default_rng(cfg.seed)
        for n in cfg.sizes:
            x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
            y = probe.fft_retry(x, no_batch=True, policy=_LOADGEN_RETRY)
            if not np.allclose(y, np.fft.fft(x), atol=1e-6):
                raise RuntimeError(f"warmup: result mismatch for n={n}")

        records: list = []
        errors: list[str] = []
        start = threading.Event()
        stop = threading.Event()
        workers = [
            threading.Thread(
                target=_worker,
                args=(wid, cfg, port, start, stop, records, errors),
                daemon=True,
            )
            for wid in range(cfg.clients)
        ]
        for w in workers:
            w.start()

        t0 = time.perf_counter()
        start.set()
        boundaries: list[float] = []
        knob_trace: list[dict] = []
        forced = {"attempted": 0, "committed": 0}
        for w in range(cfg.windows):
            if w == cfg.swap_window and service.tuner is not None:
                # the acceptance scenario: hot-swap every hot plan while
                # the clients are mid-flight
                for n in cfg.sizes:
                    key = service._plan_key(n, None, None, None)
                    forced["attempted"] += 1
                    if service.tuner.retune(key):
                        forced["committed"] += 1
            time.sleep(cfg.window_duration_s)
            boundaries.append(time.perf_counter() - t0)
            knob_trace.append({
                "window": w,
                "window_ms_knob": service.config.window_s * 1e3,
                "max_batch_knob": service.config.max_batch,
            })
        stop.set()
        for w in workers:
            w.join(timeout=30)
        stats_final = probe.stats()
        probe.close()
    finally:
        graceful_shutdown(server, service)

    # -- bin every response into its measurement window -----------------------
    per_window = [
        {"latencies": [], "ok": 0, "corrupt": 0} for _ in range(cfg.windows)
    ]
    acknowledged = 0
    corrupt = 0
    lost = 0
    for recs, worker_lost in records:
        lost += worker_lost
        for t_done, dt, ok in recs:
            acknowledged += 1
            if not ok:
                corrupt += 1
            idx = bisect_left(boundaries, t_done - t0)
            if idx >= cfg.windows:
                idx = cfg.windows - 1
            bucket = per_window[idx]
            bucket["latencies"].append(dt)
            bucket["ok" if ok else "corrupt"] += 1

    windows = []
    for w, bucket in enumerate(per_window):
        lat = bucket["latencies"]
        windows.append({
            "window": w,
            "requests": len(lat),
            "throughput_rps": len(lat) / cfg.window_duration_s,
            **latency_summary(lat),
            **{k: v for k, v in knob_trace[w].items() if k != "window"},
        })

    nonempty = [w for w in windows if w["requests"]]
    first = nonempty[0] if nonempty else None
    last = nonempty[-1] if nonempty else None
    improvement = {
        "first_window": first["window"] if first else None,
        "last_window": last["window"] if last else None,
        "first_p99_ms": first["p99_ms"] if first else None,
        "last_p99_ms": last["p99_ms"] if last else None,
        "first_throughput_rps": first["throughput_rps"] if first else None,
        "last_throughput_rps": last["throughput_rps"] if last else None,
        "improved": bool(
            first and last and first is not last and (
                last["p99_ms"] < first["p99_ms"]
                or last["throughput_rps"] > first["throughput_rps"]
            )
        ),
    }

    report = {
        "config": {
            "sizes": list(cfg.sizes),
            "threads": cfg.threads,
            "mu": cfg.mu,
            "backend": cfg.backend,
            "clients": cfg.clients,
            "pipeline": cfg.pipeline,
            "windows": cfg.windows,
            "window_duration_s": cfg.window_duration_s,
            "p99_target_ms": cfg.p99_target_ms,
            "initial_window_ms": cfg.initial_window_ms,
            "swap_window": cfg.swap_window,
            "chaos": cfg.chaos,
            "seed": cfg.seed,
        },
        "windows": windows,
        "improvement": improvement,
        "integrity": {
            "acknowledged": acknowledged,
            "corrupt": corrupt,
            "lost": lost,
            "errors": errors[:20],
        },
        "forced_retunes": forced,
        "tuner": stats_final.get("tuner"),
        "plan_cache": stats_final.get("plan_cache"),
        "server_stats": stats_final,
    }
    if cfg.output:
        with open(cfg.output, "w") as fh:
            json.dump(report, fh, indent=1)
    return report


def render_tune_report(report: dict) -> str:
    """Human summary of a tune-lane report (the CLI output)."""
    cfg = report["config"]
    lines = [
        f"# repro loadgen --tune: {cfg['clients']} clients x pipeline "
        f"{cfg['pipeline']}, sizes={cfg['sizes']}, "
        f"p99 target {cfg['p99_target_ms']:.1f} ms, "
        f"initial window {cfg['initial_window_ms']:.1f} ms"
        + (f", chaos={cfg['chaos']}" if cfg["chaos"] else ""),
        f"{'win':>4} {'req':>6} {'req/s':>8} {'p50 ms':>8} {'p99 ms':>8} "
        f"{'knob ms':>8} {'batch':>6}",
    ]
    for w in report["windows"]:
        lines.append(
            f"{w['window']:>4} {w['requests']:>6} "
            f"{w['throughput_rps']:>8.1f} {w['p50_ms']:>8.2f} "
            f"{w['p99_ms']:>8.2f} {w['window_ms_knob']:>8.2f} "
            f"{w['max_batch_knob']:>6}"
        )
    imp = report["improvement"]
    if imp["first_p99_ms"] is not None:
        lines.append(
            f"lifetime: p99 {imp['first_p99_ms']:.2f} -> "
            f"{imp['last_p99_ms']:.2f} ms, throughput "
            f"{imp['first_throughput_rps']:.1f} -> "
            f"{imp['last_throughput_rps']:.1f} req/s "
            f"({'IMPROVED' if imp['improved'] else 'no improvement'})"
        )
    tuner = report.get("tuner") or {}
    forced = report["forced_retunes"]
    lines.append(
        f"tuner: {tuner.get('ticks', 0)} ticks, "
        f"{tuner.get('knob_adjustments', 0)} knob adjustments, "
        f"{tuner.get('swaps', 0)} swaps "
        f"({forced['attempted']} forced, {forced['committed']} committed, "
        f"{tuner.get('swap_failures', 0)} failures, "
        f"{tuner.get('swaps_deferred', 0)} deferred)"
    )
    integ = report["integrity"]
    lines.append(
        f"integrity: {integ['acknowledged']} acknowledged, "
        f"{integ['corrupt']} corrupt, {integ['lost']} lost "
        f"({'OK' if not integ['corrupt'] and not integ['lost'] else 'BAD'})"
    )
    return "\n".join(lines)
