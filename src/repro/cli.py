"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``derive``    print the multicore Cooley-Tukey formula for (n, p, mu)
``generate``  generate a program and verify it; ``--emit-c`` writes C source
``bench``     sweep one simulated machine and print the Figure 3 panel rows,
              measure real multiprocess speedup (``--runtime process``), or
              measure an execution backend against the NumPy interpreter
              (``--backend compiled``)
``search``    autotune a factorization on a simulated machine, or with
              ``--measure`` rank candidates by measured wall-clock on
              the real executor registry (FFTW-planner style)
``tune``      offline measured-search sweep over sizes; persists the
              rankings as wisdom for serve/shard to reuse
``profile``   trace one transform end to end and print the per-stage report
``serve``     run the TCP/JSON FFT service (plan cache + request batching);
              ``--tune`` adds the online autotuner (knob walking + plan
              hot-swap; see docs/tuning.md)
``shard``     run a consistent-hash router over a fleet of serve shards
``loadgen``   drive a running server; throughput/latency report + JSON
              (``--shards N`` instead spins up and measures a shard
              fleet; ``--tune`` runs the self-improving tuning-lifetime
              lane and writes BENCH_tune.json)
``check``     dynamic concurrency certification: replay the pipeline's
              plans and verify race freedom, false-sharing freedom at µ,
              and load balance (non-zero exit on any violation)
``hunt``      differential fuzzing: sweep seeded random plan configs
              across executors through the oracle stack, automatically
              reduce each failure to a 1-minimal SPL reproducer, and
              file it into the regression corpus (non-zero exit on any
              finding)

``generate``, ``bench``, ``search``, and ``profile`` accept ``--trace PATH``:
the whole command runs under a :mod:`repro.trace` tracer and the collected
timeline is written as Chrome trace-event JSON (open in ``chrome://tracing``
or Perfetto).  See ``docs/profiling.md``.
"""

from __future__ import annotations

import argparse
import contextlib
import sys


@contextlib.contextmanager
def _maybe_tracing(args: argparse.Namespace):
    """Run the command under a tracer when ``--trace PATH`` was given."""
    trace_path = getattr(args, "trace", None)
    if trace_path is None:
        yield None
        return
    from .trace import Tracer, tracing, write_chrome_trace

    tracer = Tracer()
    with tracing(tracer):
        yield tracer
    out = write_chrome_trace(tracer, trace_path)
    print(f"# chrome trace written to {out}", file=sys.stderr)


def _cmd_derive(args: argparse.Namespace) -> int:
    from .rewrite import RewriteTrace, derive_multicore_ct
    from .spl import format_expr, is_fully_optimized

    trace = RewriteTrace()
    f = derive_multicore_ct(args.n, args.threads, args.mu, trace=trace)
    print(format_expr(f, unicode=not args.ascii))
    print(f"# rewrite steps: {len(trace)}", file=sys.stderr)
    print(
        f"# Definition 1 (p={args.threads}, mu={args.mu}): "
        f"{is_fully_optimized(f, args.threads, args.mu)}",
        file=sys.stderr,
    )
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    from .frontend import generate_fft, verify_program

    with _maybe_tracing(args):
        gen = generate_fft(
            args.n, threads=args.threads, mu=args.mu, nu=args.nu
        )
        ok = verify_program(gen)
        nu_note = f", nu={args.nu}" if args.nu > 1 else ""
        print(
            f"# DFT_{args.n}, p={args.threads}, mu={args.mu}{nu_note}: "
            f"{len(gen.stages)} stages, verified={ok}",
            file=sys.stderr,
        )
        if args.emit_c:
            from .frontend import spiral_formula
            from .codegen import generate_c
            from .sigma import lower

            f = spiral_formula(
                args.n, args.threads, args.mu, "balanced", 32, nu=args.nu
            )
            src = generate_c(lower(f, barrier_mu=args.mu), mode=args.mode)
            print(src.source)
        else:
            print(gen.source)
    return 0 if ok else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    if args.prune_cache:
        return _cmd_bench_prune_cache(args)
    if args.backend is not None:
        return _cmd_bench_backend(args)
    if args.runtime == "process":
        return _cmd_bench_process(args)
    if args.machine is None:
        print(
            "error: a machine name is required for the simulated-machine "
            "panel (or pass --runtime process / --backend NAME for a "
            "measured benchmark)",
            file=sys.stderr,
        )
        return 2
    from .baselines import FFTWModel
    from .frontend import SpiralSMP
    from .machine import SyncProfile, machine

    spec = machine(args.machine)
    with _maybe_tracing(args):
        spiral = SpiralSMP(spec)
        fftw = FFTWModel(spec)
        print(f"# {spec.name} — pseudo Mflop/s (5 n log2 n / us)")
        print(
            "log2n,spiral_seq,spiral_pthreads,spiral_openmp,"
            "fftw_seq,fftw_best,fftw_threads"
        )
        for k in range(args.kmin, args.kmax + 1):
            n = 1 << k
            plan = fftw.plan(n)
            print(
                f"{k},{spiral.pseudo_mflops(n, 1):.0f},"
                f"{spiral.pseudo_mflops(n, spec.p, SyncProfile.POOLED):.0f},"
                f"{spiral.pseudo_mflops(n, spec.p, SyncProfile.FORK_JOIN):.0f},"
                f"{fftw.cost_sequential(n).pseudo_mflops(spec):.0f},"
                f"{plan.pseudo_mflops(spec):.0f},{plan.threads}"
            )
    return 0


def _cmd_bench_prune_cache(args: argparse.Namespace) -> int:
    """``bench --prune-cache``: GC the content-addressed codelet cache."""
    from .codegen import prune_codelet_cache

    report = prune_codelet_cache(max_entries=args.cache_max)
    print(
        f"# codelet cache: {report['entries']} entr(ies), "
        f"pruned {report['pruned']} "
        f"({report['bytes_freed']} bytes), kept {report['kept']}"
    )
    if args.cache_max is None:
        print(
            "# (report only: pass --cache-max N, or set "
            "$REPRO_CODELET_CACHE_MAX to prune after every compile)",
            file=sys.stderr,
        )
    return 0


def _cmd_bench_process(args: argparse.Namespace) -> int:
    """Measured wall-clock benchmark of the multiprocess runtime."""
    import json

    from .mp import render_mp_bench, run_mp_bench

    with _maybe_tracing(args):
        result = run_mp_bench(
            kmin=args.kmin,
            kmax=args.kmax,
            threads=args.threads,
            batch=args.batch,
            repeats=args.repeats,
        )
    print(render_mp_bench(result))
    out = args.output or "BENCH_mp.json"
    with open(out, "w") as f:
        json.dump(result, f, indent=2)
    print(f"# report written to {out}", file=sys.stderr)
    return 0


def _cmd_bench_backend(args: argparse.Namespace) -> int:
    """Measured wall-clock comparison of an execution backend vs NumPy."""
    import json

    from .codegen import BackendUnavailable
    from .codegen.bench import render_backend_bench, run_backend_bench

    try:
        with _maybe_tracing(args):
            result = run_backend_bench(
                backend=args.backend,
                kmin=args.kmin,
                kmax=args.kmax,
                threads=args.threads,
                batch=args.batch,
                repeats=args.repeats,
                strict=True,
                nu=args.nu,
            )
    except BackendUnavailable as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_backend_bench(result))
    out = args.output or (
        "BENCH_simd.json" if args.nu > 1 else "BENCH_backend.json"
    )
    with open(out, "w") as f:
        json.dump(result, f, indent=2)
    print(f"# report written to {out}", file=sys.stderr)
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    if args.measure:
        return _cmd_search_measure(args)
    from .machine import machine, SyncProfile
    from .search import dp_search, model_objective

    spec = machine(args.machine)
    with _maybe_tracing(args):
        res = dp_search(
            args.n,
            model_objective(spec, 1, SyncProfile.NONE),
            leaf_max=args.leaf_max,
        )
        print(f"# best factorization tree for DFT_{args.n} on {spec.name}")
        print(f"tree: {res.tree}")
        print(f"modeled cycles: {res.value:.0f}")
        print(f"objective evaluations: {res.evaluations}")
    return 0


def _cmd_search_measure(args: argparse.Namespace) -> int:
    """``search --measure``: time real candidates instead of the model."""
    from .tune import measured_search
    from .wisdom import Wisdom

    wisdom = Wisdom(args.wisdom) if args.wisdom else None
    with _maybe_tracing(args):
        result = measured_search(
            args.n,
            threads=args.threads,
            mu=args.mu,
            backend=args.backend,
            runtime=args.runtime,
            budget=args.budget,
            repeats=args.repeats,
            batch=args.batch,
            seed=args.seed,
            wisdom=wisdom,
        )
    print(
        f"# measured search for DFT_{args.n} "
        f"(threads={result.threads}, mu={result.mu}, "
        f"backend={result.backend}, runtime={result.runtime}, "
        f"batch={result.batch}, best-of-{result.repeats}, "
        f"seed={result.seed})"
    )
    print("rank,candidate,per_vector_ms,pseudo_mflops")
    for i, m in enumerate(result.ranking):
        vec = f"/v{m.nu}" if m.nu > 1 else ""
        print(
            f"{i},{m.strategy}/leaf{m.min_leaf}{vec},"
            f"{m.per_vector_ms:.4f},{m.pseudo_mflops:.0f}"
        )
    if wisdom is not None:
        print(f"# ranking persisted to {args.wisdom}", file=sys.stderr)
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    """Offline measured-search sweep; persists rankings as wisdom."""
    import json

    from .tune import measured_search
    from .hunt.oracles import ExecutorPools
    from .wisdom import Wisdom

    sizes = [int(s) for s in args.sizes.split(",") if s]
    wisdom = Wisdom(args.wisdom) if args.wisdom else None
    results = []
    pools = ExecutorPools()
    try:
        with _maybe_tracing(args):
            print(
                f"# measured tune sweep: sizes={sizes} "
                f"threads={args.threads} mu={args.mu} "
                f"backend={args.backend} runtime={args.runtime} "
                f"budget={args.budget} best-of-{args.repeats}"
            )
            print("n,best,per_vector_ms,pseudo_mflops,candidates")
            for n in sizes:
                result = measured_search(
                    n,
                    threads=args.threads,
                    mu=args.mu,
                    backend=args.backend,
                    runtime=args.runtime,
                    budget=args.budget,
                    repeats=args.repeats,
                    batch=args.batch,
                    seed=args.seed,
                    pools=pools,
                    wisdom=wisdom,
                )
                best = result.best
                vec = f"/v{best.nu}" if best.nu > 1 else ""
                print(
                    f"{n},{best.strategy}/leaf{best.min_leaf}{vec},"
                    f"{best.per_vector_ms:.4f},{best.pseudo_mflops:.0f},"
                    f"{len(result.ranking)}"
                )
                results.append(result.to_json())
    finally:
        pools.close()
    if wisdom is not None:
        print(f"# rankings persisted to {args.wisdom}", file=sys.stderr)
    if args.output:
        with open(args.output, "w") as f:
            json.dump({"sweeps": results}, f, indent=2)
        print(f"# report written to {args.output}", file=sys.stderr)
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from .trace import profile_transform

    result = profile_transform(
        args.size,
        threads=args.threads,
        mu=args.mu,
        machine_name=args.machine,
        runtime=args.runtime,
    )
    print(result.render_text())
    if args.trace is not None:
        result.write_trace(args.trace)
        print(f"# chrome trace written to {args.trace}", file=sys.stderr)
    if result.verified is False:
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve import FFTService, ServeConfig
    from .serve.server import FFTServer, graceful_shutdown, \
        install_signal_handlers

    config = ServeConfig(
        threads=args.threads,
        mu=args.mu,
        window_s=args.window_ms / 1e3,
        max_batch=args.max_batch,
        queue_limit=args.queue_limit,
        cache_capacity=args.cache_capacity,
        wisdom_path=args.wisdom,
        runtime=args.runtime,
        backend=args.backend,
        nu=args.nu,
        tune=args.tune,
        tune_interval_s=args.tune_interval_ms / 1e3,
        p99_target_ms=args.p99_target_ms,
    )
    if args.chaos:
        from .faults import parse_chaos_spec, set_fault_plan

        plan = parse_chaos_spec(args.chaos, seed=args.chaos_seed)
        set_fault_plan(plan)
        print(
            f"# chaos mode: {args.chaos} (seed={args.chaos_seed})",
            file=sys.stderr,
        )
    with _maybe_tracing(args):
        service = FFTService(config)
        server = FFTServer((args.host, args.port), service)
        tune_note = (
            f", tuner on (interval={args.tune_interval_ms}ms, "
            f"p99-target={args.p99_target_ms}ms)" if args.tune else ""
        )
        print(
            f"# repro serve listening on {args.host}:{server.port} "
            f"(runtime={args.runtime}, backend={args.backend}, "
            f"threads={args.threads}, "
            f"mu={args.mu}, window={args.window_ms}ms, "
            f"max-batch={args.max_batch}, queue-limit={args.queue_limit}"
            f"{tune_note})",
            file=sys.stderr,
        )
        done = install_signal_handlers(server, service)
        try:
            server.serve_forever()
            # the signal handler's shutdown thread finishes the drain
            done.wait(timeout=60)
            print("# drained and shut down", file=sys.stderr)
        except KeyboardInterrupt:  # pragma: no cover - handler owns SIGINT
            print("# shutting down", file=sys.stderr)
            graceful_shutdown(server, service)
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    """Sweep the pipeline's plans through the dynamic concurrency checker."""
    from .check import check_backend_program, check_program, compare_plans
    from .codegen import BackendUnavailable, resolve_backend
    from .frontend import feasible_threads, generate_fft
    from .mp.spec import PlanSpec, compile_spec

    if args.backend != "numpy":
        # strict: an explicit --backend request on a host that cannot run
        # it should fail loudly, not silently certify the numpy fallback
        try:
            resolve_backend(args.backend, strict=True)
        except BackendUnavailable as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    if args.chaos:
        # fault_plan (not a bare set) so in-process callers — the
        # negative tests drive main() directly — get the plan restored
        from .faults import fault_plan, parse_chaos_spec

        chaos_ctx = fault_plan(
            parse_chaos_spec(args.chaos, seed=args.chaos_seed)
        )
        print(
            f"# chaos mode: {args.chaos} (seed={args.chaos_seed})",
            file=sys.stderr,
        )
    else:
        chaos_ctx = contextlib.nullcontext()
    threads_list = [int(t) for t in args.threads.split(",") if t]
    mu_list = [int(m) for m in args.mu.split(",") if m]
    runtimes = (
        ["thread", "process"] if args.runtime == "both" else [args.runtime]
    )
    failures = 0
    checked = 0
    with chaos_ctx, _maybe_tracing(args):
        for k in range(args.kmin, args.kmax + 1):
            n = 1 << k
            for p in threads_list:
                for mu in mu_list:
                    t = feasible_threads(n, p, mu) if p > 1 else 1
                    programs = {}
                    if "thread" in runtimes:
                        programs["thread"] = generate_fft(
                            n, threads=t, mu=mu, strategy=args.strategy,
                            nu=args.nu,
                        ).program
                    if "process" in runtimes:
                        # the plan the process pool workers compile locally
                        spec = PlanSpec(
                            n=n, threads=t, mu=mu, strategy=args.strategy,
                            nu=args.nu,
                        )
                        programs["process"] = compile_spec(spec).program.program
                    for rt, prog in programs.items():
                        report = check_program(prog, mu, max_skew=args.skew)
                        checked += 1
                        status = "OK" if report.ok else "FAIL"
                        print(
                            f"n=2^{k} p={p}(t={t}) mu={mu} {rt}: "
                            f"stages={report.stages} "
                            f"windows={report.windows} "
                            f"elided={report.elided_certified}/"
                            f"{report.elided} {status}"
                        )
                        for f in report.findings:
                            print(f"  {f}")
                        if not report.ok:
                            failures += 1
                        if args.backend != "numpy":
                            diffs = check_backend_program(
                                prog, args.backend
                            )
                            for f in diffs:
                                print(f"  backend: {f}")
                            if diffs:
                                failures += 1
                            else:
                                print(
                                    f"  backend={args.backend}: "
                                    f"differential OK"
                                )
                    if len(programs) == 2:
                        for f in compare_plans(
                            programs["thread"], programs["process"]
                        ):
                            print(f"n=2^{k} p={p} mu={mu}  {f}")
                            failures += 1
    print(
        f"# {checked} plan(s) checked, {failures} failure(s)",
        file=sys.stderr,
    )
    return 1 if failures else 0


def _cmd_hunt(args: argparse.Namespace) -> int:
    """Differential-fuzz the pipeline; reduce and file every failure."""
    from .codegen import BackendUnavailable, resolve_backend
    from .hunt import BACKENDS, HuntConfig, run_hunt

    if args.backend == "all":
        backends = BACKENDS
    else:
        backends = (args.backend,)
        if args.backend != "numpy":
            # strict: an explicit single-backend hunt on a host that
            # cannot run it should fail loudly, not fuzz the fallback
            try:
                resolve_backend(args.backend, strict=True)
            except BackendUnavailable as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2

    if args.chaos:
        # fault_plan (not a bare set) so in-process callers — the
        # inverted-lane tests drive main() directly — get the plan
        # restored afterwards
        from .faults import fault_plan, parse_chaos_spec

        chaos_ctx = fault_plan(
            parse_chaos_spec(args.chaos, seed=args.chaos_seed)
        )
        print(
            f"# chaos mode: {args.chaos} (seed={args.chaos_seed})",
            file=sys.stderr,
        )
    else:
        chaos_ctx = contextlib.nullcontext()

    config = HuntConfig(
        budget=args.budget,
        seed=args.seed,
        backends=backends,
        reduce=args.reduce,
        corpus_dir=args.corpus,
        wisdom_path=args.wisdom,
        nus=tuple(int(v) for v in args.nus.split(",") if v),
    )
    with chaos_ctx, _maybe_tracing(args):
        report = run_hunt(config)
    print(report.render_text())
    print(
        f"# {report.cases} case(s), {len(report.findings)} finding(s)",
        file=sys.stderr,
    )
    return 1 if report.findings else 0


def _cmd_shard(args: argparse.Namespace) -> int:
    """Run a consistent-hash router fronting a fleet of serve shards."""
    import signal
    import threading

    from .serve import ServeConfig
    from .shard import ShardFleet, ShardRouter

    config = ServeConfig(
        threads=args.threads,
        mu=args.mu,
        window_s=args.window_ms / 1e3,
        max_batch=args.max_batch,
        queue_limit=args.queue_limit,
        cache_capacity=args.cache_capacity,
        wisdom_path=args.wisdom,
        runtime=args.runtime,
        backend=args.backend,
    )
    if args.chaos:
        from .faults import parse_chaos_spec, set_fault_plan

        plan = parse_chaos_spec(args.chaos, seed=args.chaos_seed)
        set_fault_plan(plan)
        print(
            f"# chaos mode: {args.chaos} (seed={args.chaos_seed})",
            file=sys.stderr,
        )
    with _maybe_tracing(args):
        fleet = ShardFleet(
            args.shards, config, vnodes=args.vnodes, replicas=args.replicas
        )
        router = ShardRouter((args.host, args.port), fleet)
        stop = threading.Event()
        for s in (signal.SIGTERM, signal.SIGINT):
            signal.signal(s, lambda *_: stop.set())
        router.serve_background()
        ports = {sid: fleet.address(sid)[1] for sid in fleet.shard_ids}
        print(
            f"# repro shard: router on {args.host}:{router.port} over "
            f"{args.shards} shard(s) {ports} "
            f"(vnodes={args.vnodes}, replicas={args.replicas}, "
            f"threads={args.threads}, mu={args.mu})",
            file=sys.stderr,
        )
        try:
            stop.wait()
            print("# shutting down fleet", file=sys.stderr)
        finally:
            router.close()
            fleet.close()
        print("# fleet drained and shut down", file=sys.stderr)
    return 0


def _cmd_loadgen_shards(args: argparse.Namespace) -> int:
    """``loadgen --shards N``: spin up and measure a shard fleet."""
    from .shard import ShardLoadgenConfig, render_shard_report, \
        run_shard_loadgen

    sizes = [int(s) for s in args.sizes.split(",") if s]
    output = args.output
    if output == "BENCH_serve.json":  # the single-server default
        output = "BENCH_shard.json"
    cfg = ShardLoadgenConfig(
        shards=args.shards,
        sizes=sizes,
        clients=args.clients,
        requests=args.requests,
        pipeline=args.pipeline,
        threads=args.threads,
        mu=args.mu,
        output=output,
        verify=args.verify,
        kill_after_s=args.kill_after,
        baseline=not args.no_baseline,
        replicas=args.replicas,
        window_ms=args.window_ms,
        queue_limit=args.queue_limit,
    )
    if args.seed is not None:
        cfg.seed = args.seed
    report = run_shard_loadgen(cfg)
    print(render_shard_report(report))
    if output:
        print(f"# report written to {output}", file=sys.stderr)
    return 1 if report["measured"]["lost"] else 0


def _cmd_loadgen_tune(args: argparse.Namespace) -> int:
    """``loadgen --tune``: self-driving tuning lifetime demonstration."""
    from .tune import TuneLoadgenConfig, render_tune_report, \
        run_tune_loadgen

    sizes = [int(s) for s in args.sizes.split(",") if s]
    output = args.output
    if output == "BENCH_serve.json":  # the plain-loadgen default
        output = "BENCH_tune.json"
    cfg = TuneLoadgenConfig(
        sizes=tuple(sizes),
        threads=args.threads if args.threads is not None else 1,
        mu=args.mu if args.mu is not None else 4,
        clients=args.clients,
        pipeline=args.pipeline,
        windows=args.windows,
        window_duration_s=args.window_duration_ms / 1e3,
        p99_target_ms=args.p99_target_ms,
        initial_window_ms=args.initial_window_ms,
        tune_interval_s=args.tune_interval_ms / 1e3,
        swap_window=args.swap_window,
        chaos=args.chaos,
        chaos_seed=args.chaos_seed,
        output=output,
    )
    if args.seed is not None:
        cfg.seed = args.seed
    report = run_tune_loadgen(cfg)
    print(render_tune_report(report))
    if output:
        print(f"# report written to {output}", file=sys.stderr)
    integ = report["integrity"]
    return 1 if (integ["lost"] or integ["corrupt"]) else 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from .serve import LoadgenConfig, render_report, run_loadgen

    sys.setswitchinterval(0.0005)  # same rationale as in serve
    if args.tune:
        return _cmd_loadgen_tune(args)
    if args.shards is not None:
        return _cmd_loadgen_shards(args)
    sizes = [int(s) for s in args.sizes.split(",") if s]
    cfg = LoadgenConfig(
        host=args.host,
        port=args.port,
        sizes=sizes,
        clients=args.clients,
        requests=args.requests,
        pipeline=args.pipeline,
        threads=args.threads,
        mu=args.mu,
        baseline_requests=args.baseline_requests,
        output=args.output,
        verify=args.verify,
    )
    if args.seed is not None:
        cfg.seed = args.seed
    report = run_loadgen(cfg)
    print(render_report(report))
    if args.output:
        print(f"# report written to {args.output}", file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Spiral-SMP reproduction: FFT program generation for "
        "shared memory (SC'06)",
    )
    sub = p.add_subparsers(dest="command", required=True)

    def add_trace_flag(sp: argparse.ArgumentParser) -> None:
        sp.add_argument(
            "--trace",
            metavar="PATH",
            default=None,
            help="write a Chrome trace-event JSON of this run to PATH",
        )

    d = sub.add_parser("derive", help="derive the multicore CT formula")
    d.add_argument("n", type=int)
    d.add_argument("--threads", "-p", type=int, default=2)
    d.add_argument("--mu", type=int, default=4)
    d.add_argument("--ascii", action="store_true")
    d.set_defaults(fn=_cmd_derive)

    g = sub.add_parser("generate", help="generate and verify a program")
    g.add_argument("n", type=int)
    g.add_argument("--threads", "-p", type=int, default=1)
    g.add_argument("--mu", type=int, default=4)
    g.add_argument("--emit-c", action="store_true")
    g.add_argument(
        "--nu",
        type=int,
        default=1,
        help="vec(ν) granularity: rewrite the formula into ν-way "
        "vector form before lowering (1 = scalar; inadmissible ν "
        "degrades to the scalar plan with a warning)",
    )
    g.add_argument(
        "--mode",
        choices=["pthreads", "openmp", "sequential"],
        default="pthreads",
    )
    add_trace_flag(g)
    g.set_defaults(fn=_cmd_generate)

    b = sub.add_parser(
        "bench",
        help="sweep a simulated machine, or measure the process runtime "
        "(--runtime process)",
    )
    b.add_argument(
        "machine",
        nargs="?",
        default=None,
        choices=["core_duo", "pentium_d", "opteron", "xeon_mp", "cmp8"],
        help="simulated machine for the model panel (omit with "
        "--runtime process)",
    )
    b.add_argument("--kmin", type=int, default=6)
    b.add_argument("--kmax", type=int, default=14)
    b.add_argument(
        "--runtime",
        choices=["model", "process"],
        default="model",
        help="model: the simulated-machine Figure 3 panel (default); "
        "process: measured wall-clock speedup of the multiprocess "
        "runtime on this host",
    )
    b.add_argument(
        "--threads",
        "-p",
        type=int,
        default=2,
        help="worker processes for --runtime process",
    )
    b.add_argument(
        "--batch",
        type=int,
        default=8,
        help="stacked vectors per timed execution (--runtime process)",
    )
    b.add_argument(
        "--repeats",
        type=int,
        default=5,
        help="timing repeats, best-of (--runtime process)",
    )
    b.add_argument(
        "--backend",
        choices=["numpy", "compiled", "simulator"],
        default=None,
        help="measure this execution backend against the NumPy "
        "interpreter on the same plans (strict: errors if the backend "
        "is unavailable on this host)",
    )
    b.add_argument(
        "--nu",
        type=int,
        default=1,
        help="with --backend: vec(ν) plan granularity; nu > 1 adds a "
        "scalar-compiled lane so each row reports the pure SIMD "
        "speedup, and the default report becomes BENCH_simd.json",
    )
    b.add_argument(
        "--output",
        metavar="PATH",
        default=None,
        help="JSON report path (default: BENCH_mp.json for --runtime "
        "process, BENCH_backend.json for --backend, BENCH_simd.json "
        "for --backend with --nu > 1)",
    )
    b.add_argument(
        "--prune-cache",
        action="store_true",
        help="garbage-collect the content-addressed compiled-codelet "
        "cache (LRU by last use) and exit; without --cache-max this "
        "only reports",
    )
    b.add_argument(
        "--cache-max",
        type=int,
        metavar="N",
        default=None,
        help="with --prune-cache: keep at most N cached codelet "
        "artifacts ($REPRO_CODELET_CACHE_MAX makes every compile "
        "auto-prune to the same bound)",
    )
    add_trace_flag(b)
    b.set_defaults(fn=_cmd_bench)

    s = sub.add_parser(
        "search",
        help="autotune a factorization (modeled cycles by default; "
        "--measure times real candidates on this host)",
    )
    s.add_argument("n", type=int)
    s.add_argument("--machine", default="core_duo")
    s.add_argument("--leaf-max", type=int, default=32)
    s.add_argument(
        "--measure",
        action="store_true",
        help="rank candidates by measured wall-clock on the real "
        "executor registry instead of the analytic cycle model "
        "(FFTW-planner style; see docs/tuning.md)",
    )
    s.add_argument(
        "--threads", "-p", type=int, default=1,
        help="with --measure: worker count for the timed executor",
    )
    s.add_argument(
        "--mu", type=int, default=4,
        help="with --measure: cache-line length of the timed plans",
    )
    s.add_argument(
        "--backend",
        choices=["numpy", "compiled", "simulator"],
        default="numpy",
        help="with --measure: execution backend the candidates run on",
    )
    s.add_argument(
        "--runtime",
        choices=["sequential", "pthreads", "process"],
        default="sequential",
        help="with --measure: runtime the candidates are timed under",
    )
    s.add_argument(
        "--budget", type=int, default=8,
        help="with --measure: max candidates timed (seeded-shuffle "
        "prefix of the space)",
    )
    s.add_argument(
        "--repeats", type=int, default=3,
        help="with --measure: timing repeats, best-of",
    )
    s.add_argument(
        "--batch", type=int, default=1,
        help="with --measure: stacked vectors per timed execution",
    )
    s.add_argument(
        "--wisdom", metavar="PATH", default=None,
        help="with --measure: persist the ranking into this wisdom "
        "JSON (the record repro serve --tune reads)",
    )
    s.add_argument(
        "--seed", type=int, default=None,
        help="with --measure: candidate-order/input seed "
        "(default: $REPRO_SEED, else 0)",
    )
    add_trace_flag(s)
    s.set_defaults(fn=_cmd_search)

    tn = sub.add_parser(
        "tune",
        help="offline measured-search sweep over sizes; persists "
        "rankings as wisdom for serve/shard to reuse",
    )
    tn.add_argument(
        "--sizes",
        default="64,128,256",
        help="comma-separated transform sizes to tune",
    )
    tn.add_argument("--threads", "-p", type=int, default=1)
    tn.add_argument("--mu", type=int, default=4)
    tn.add_argument(
        "--backend",
        choices=["numpy", "compiled", "simulator"],
        default="numpy",
        help="execution backend the candidates run on",
    )
    tn.add_argument(
        "--runtime",
        choices=["sequential", "pthreads", "process"],
        default="sequential",
        help="runtime the candidates are timed under",
    )
    tn.add_argument(
        "--budget", type=int, default=8,
        help="max candidates timed per size",
    )
    tn.add_argument(
        "--repeats", type=int, default=3,
        help="timing repeats, best-of",
    )
    tn.add_argument(
        "--batch", type=int, default=8,
        help="stacked vectors per timed execution (serving-shaped)",
    )
    tn.add_argument(
        "--wisdom", metavar="PATH", default=None,
        help="persist rankings into this wisdom JSON file",
    )
    tn.add_argument(
        "--output", metavar="PATH", default=None,
        help="also write the full sweep report as JSON here",
    )
    tn.add_argument(
        "--seed", type=int, default=None,
        help="candidate-order/input seed (default: $REPRO_SEED, else 0)",
    )
    add_trace_flag(tn)
    tn.set_defaults(fn=_cmd_tune)

    pr = sub.add_parser(
        "profile",
        help="trace one transform end to end; per-stage cycle/miss report",
    )
    pr.add_argument("--size", "-n", type=int, required=True)
    pr.add_argument("--threads", "-p", type=int, default=1)
    pr.add_argument("--mu", type=int, default=4)
    pr.add_argument("--machine", default="core_duo")
    pr.add_argument(
        "--runtime",
        choices=["pthreads", "openmp", "sequential"],
        default="pthreads",
    )
    add_trace_flag(pr)
    pr.set_defaults(fn=_cmd_profile)

    sv = sub.add_parser(
        "serve",
        help="TCP/JSON FFT service: shared plan cache, request batching, "
        "backpressure",
    )
    sv.add_argument("--host", default="127.0.0.1")
    sv.add_argument("--port", type=int, default=7373)
    sv.add_argument("--threads", "-p", type=int, default=1)
    sv.add_argument("--mu", type=int, default=4)
    sv.add_argument(
        "--window-ms",
        type=float,
        default=0.0,
        help="max batching wait in milliseconds; 0 (default) batches "
        "continuously: each execution coalesces whatever queued during "
        "the previous one",
    )
    sv.add_argument(
        "--max-batch",
        type=int,
        default=48,
        help="max vectors coalesced into one stacked execution",
    )
    sv.add_argument(
        "--queue-limit",
        type=int,
        default=512,
        help="max pending vectors before requests are rejected",
    )
    sv.add_argument(
        "--cache-capacity",
        type=int,
        default=64,
        help="plan-cache entries kept (LRU beyond this)",
    )
    sv.add_argument(
        "--wisdom",
        metavar="PATH",
        default=None,
        help="persist search results to this wisdom JSON file",
    )
    sv.add_argument(
        "--runtime",
        choices=["threads", "process"],
        default="threads",
        help="worker pool kind: GIL-bound threads (default) or the "
        "multiprocess shared-memory runtime (real parallel speedup; "
        "see docs/parallel.md)",
    )
    sv.add_argument(
        "--backend",
        choices=["numpy", "compiled", "simulator"],
        default="numpy",
        help="execution backend for plan stages (compiled JITs C "
        "codelets when a compiler is present; falls back to numpy "
        "otherwise — see docs/codegen.md)",
    )
    sv.add_argument(
        "--nu",
        type=int,
        default=1,
        help="default vec(ν) granularity for served plans (nu > 1 "
        "emits ν-wide SIMD stage bodies on the compiled backend; "
        "inadmissible ν degrades to the scalar plan)",
    )
    sv.add_argument(
        "--tune",
        action="store_true",
        help="run the background autotuner: records per-plan latency "
        "into wisdom, AIMD-tunes the batcher knobs toward "
        "--p99-target-ms, and hot-swaps regressed plans with zero "
        "dropped requests (see docs/tuning.md)",
    )
    sv.add_argument(
        "--tune-interval-ms",
        type=float,
        default=500.0,
        help="tuner tick period in milliseconds",
    )
    sv.add_argument(
        "--p99-target-ms",
        type=float,
        default=None,
        help="with --tune: latency goal the batcher knobs walk toward "
        "(omit to leave the knobs alone and only re-search regressions)",
    )
    sv.add_argument(
        "--chaos",
        metavar="SPEC",
        default=None,
        help="inject faults: comma-separated 'point:rate[:delay_ms]' "
        "(e.g. 'runtime.worker_crash:0.1,net.conn_reset:0.05'); see "
        "docs/serving.md for the injection points",
    )
    sv.add_argument(
        "--chaos-seed",
        type=int,
        default=0,
        help="seed for the chaos fault plan's random stream",
    )
    add_trace_flag(sv)
    sv.set_defaults(fn=_cmd_serve)

    sh = sub.add_parser(
        "shard",
        help="consistent-hash router over a fleet of supervised serve "
        "shards (clients connect to the router unchanged)",
    )
    sh.add_argument("--host", default="127.0.0.1")
    sh.add_argument(
        "--port",
        type=int,
        default=7380,
        help="router listen port (shards bind ephemeral local ports)",
    )
    sh.add_argument(
        "--shards", type=int, default=2, help="shard worker processes"
    )
    sh.add_argument(
        "--vnodes",
        type=int,
        default=64,
        help="virtual nodes per shard on the hash ring",
    )
    sh.add_argument(
        "--replicas",
        type=int,
        default=1,
        help="ring successors prewarmed per plan key (the failover heirs)",
    )
    sh.add_argument("--threads", "-p", type=int, default=1)
    sh.add_argument("--mu", type=int, default=4)
    sh.add_argument(
        "--window-ms",
        type=float,
        default=0.0,
        help="per-shard batching window (as serve --window-ms)",
    )
    sh.add_argument(
        "--max-batch",
        type=int,
        default=48,
        help="per-shard max vectors coalesced into one execution",
    )
    sh.add_argument(
        "--queue-limit",
        type=int,
        default=512,
        help="per-shard pending-vector bound before rejections",
    )
    sh.add_argument(
        "--cache-capacity",
        type=int,
        default=64,
        help="per-shard plan-cache entries kept (LRU beyond this)",
    )
    sh.add_argument(
        "--wisdom",
        metavar="PATH",
        default=None,
        help="wisdom JSON shared by every shard (fleet-wide tuning reuse)",
    )
    sh.add_argument(
        "--runtime",
        choices=["threads", "process"],
        default="threads",
        help="per-shard worker pool kind (as serve --runtime)",
    )
    sh.add_argument(
        "--backend",
        choices=["numpy", "compiled", "simulator"],
        default="numpy",
        help="per-shard execution backend (as serve --backend)",
    )
    sh.add_argument(
        "--chaos",
        metavar="SPEC",
        default=None,
        help="inject faults, e.g. 'shard.worker_crash:0.01' (the "
        "supervisor kills and heals shards) or 'shard.route_flap:0.05' "
        "(requests divert to ring successors); see docs/sharding.md",
    )
    sh.add_argument(
        "--chaos-seed",
        type=int,
        default=0,
        help="seed for the chaos fault plan's random stream",
    )
    add_trace_flag(sh)
    sh.set_defaults(fn=_cmd_shard)

    lg = sub.add_parser(
        "loadgen",
        help="drive a running 'repro serve'; report throughput and latency "
        "percentiles",
    )
    lg.add_argument("--host", default="127.0.0.1")
    lg.add_argument("--port", type=int, default=7373)
    lg.add_argument(
        "--sizes",
        default="64,128",
        help="comma-separated transform sizes to cycle through",
    )
    lg.add_argument(
        "--clients", type=int, default=4, help="concurrent closed-loop clients"
    )
    lg.add_argument(
        "--requests", type=int, default=500, help="requests per client"
    )
    lg.add_argument(
        "--pipeline",
        type=int,
        default=16,
        help="in-flight requests each client keeps on its connection",
    )
    lg.add_argument("--threads", "-p", type=int, default=None)
    lg.add_argument("--mu", type=int, default=None)
    lg.add_argument(
        "--baseline-requests",
        type=int,
        default=400,
        help="length of the unbatched one-request-at-a-time baseline phase",
    )
    lg.add_argument(
        "--output",
        metavar="PATH",
        default="BENCH_serve.json",
        help="write the JSON report here",
    )
    lg.add_argument(
        "--seed",
        type=int,
        default=None,
        help="payload-generator seed (default: $REPRO_SEED, else 0)",
    )
    lg.add_argument(
        "--verify",
        choices=["first", "all", "none"],
        default="first",
        help="check results against numpy: one per worker (first, "
        "default), every result (all), or skip (none)",
    )
    lg.add_argument(
        "--shards",
        type=int,
        default=None,
        help="measure an in-process shard fleet of this size instead of "
        "a running server (ignores --host/--port; writes "
        "BENCH_shard.json with per-shard percentiles and the fleet-vs-"
        "one-shard speedup)",
    )
    lg.add_argument(
        "--kill-after",
        type=float,
        metavar="SECONDS",
        default=None,
        help="with --shards: SIGKILL one shard this long into the "
        "measured phase (the chaos lane; the run must still complete "
        "every request)",
    )
    lg.add_argument(
        "--no-baseline",
        action="store_true",
        help="with --shards: skip the 1-shard reference fleet phase",
    )
    lg.add_argument(
        "--replicas",
        type=int,
        default=1,
        help="with --shards: ring successors prewarmed per plan key",
    )
    lg.add_argument(
        "--window-ms",
        type=float,
        default=0.0,
        help="with --shards: per-shard batching window (dispatcher-bound "
        "workloads show the sharding speedup on any host; see "
        "docs/sharding.md)",
    )
    lg.add_argument(
        "--queue-limit",
        type=int,
        default=512,
        help="with --shards: per-shard pending-vector admission bound",
    )
    lg.add_argument(
        "--tune",
        action="store_true",
        help="tuning-lifetime lane: start an in-process, deliberately "
        "mistuned server with the autotuner on and prove throughput/p99 "
        "improve over the run (writes BENCH_tune.json; a mid-run hot-"
        "swap under load must lose zero acknowledged requests)",
    )
    lg.add_argument(
        "--windows",
        type=int,
        default=6,
        help="with --tune: consecutive measurement windows",
    )
    lg.add_argument(
        "--window-duration-ms",
        type=float,
        default=600.0,
        help="with --tune: length of each measurement window",
    )
    lg.add_argument(
        "--p99-target-ms",
        type=float,
        default=5.0,
        help="with --tune: the tuner's latency goal",
    )
    lg.add_argument(
        "--initial-window-ms",
        type=float,
        default=25.0,
        help="with --tune: the deliberately mistuned starting batch "
        "window the tuner must walk down from",
    )
    lg.add_argument(
        "--tune-interval-ms",
        type=float,
        default=150.0,
        help="with --tune: tuner tick period",
    )
    lg.add_argument(
        "--swap-window",
        type=int,
        default=2,
        help="with --tune: window (0-based) at whose start every hot "
        "plan is force-retuned and hot-swapped under load (-1 disables)",
    )
    lg.add_argument(
        "--chaos",
        metavar="SPEC",
        default=None,
        help="with --tune: inject faults, e.g. 'tune.swap_corrupt:1.0' "
        "(every swap dies mid-commit; the old plan must keep serving "
        "with a clean integrity block)",
    )
    lg.add_argument(
        "--chaos-seed",
        type=int,
        default=0,
        help="with --tune: seed for the chaos fault plan's random stream",
    )
    lg.set_defaults(fn=_cmd_loadgen)

    ck = sub.add_parser(
        "check",
        help="replay generated plans; certify race freedom, false-sharing "
        "freedom at mu, and load balance (non-zero exit on violations)",
    )
    ck.add_argument("--kmin", type=int, default=4)
    ck.add_argument("--kmax", type=int, default=12)
    ck.add_argument(
        "--threads",
        "-p",
        default="2,4",
        help="comma-separated requested processor counts (clamped by "
        "feasible_threads per size)",
    )
    ck.add_argument(
        "--mu",
        default="1,2,4",
        help="comma-separated cache-line lengths (elements) to certify",
    )
    ck.add_argument(
        "--strategy",
        default="balanced",
        help="breakdown strategy for the generated plans",
    )
    ck.add_argument(
        "--skew",
        type=float,
        default=1.25,
        help="load-balance bound: max per-proc work over the mean",
    )
    ck.add_argument(
        "--runtime",
        choices=["thread", "process", "both"],
        default="both",
        help="which runtime's plan to check: the thread plan, the plan "
        "process-pool workers compile from a PlanSpec, or both "
        "(cross-checked for determinism)",
    )
    ck.add_argument(
        "--backend",
        choices=["numpy", "compiled", "simulator"],
        default="numpy",
        help="also differentially verify this execution backend's "
        "stages against the DFT and the numpy interpreter on every "
        "checked plan (strict: errors if unavailable)",
    )
    ck.add_argument(
        "--nu",
        type=int,
        default=1,
        help="vec(ν) granularity for the checked plans: certifies the "
        "vector-lowered loop structure (and, with --backend, the ν-wide "
        "compiled stages) instead of the scalar plans",
    )
    ck.add_argument(
        "--chaos",
        metavar="SPEC",
        default=None,
        help="sabotage plans before checking, e.g. "
        "'check.overlapping_write:1.0' — the checker must fail",
    )
    ck.add_argument(
        "--chaos-seed",
        type=int,
        default=0,
        help="seed for the chaos fault plan's random stream",
    )
    add_trace_flag(ck)
    ck.set_defaults(fn=_cmd_check)

    hu = sub.add_parser(
        "hunt",
        help="differential fuzzing across executors with automatic "
        "reduction of failures to 1-minimal SPL reproducers (non-zero "
        "exit on findings)",
    )
    hu.add_argument(
        "--budget",
        type=int,
        default=64,
        help="seeded random configurations to sweep",
    )
    hu.add_argument(
        "--seed",
        type=int,
        default=None,
        help="case-sampler seed (default: $REPRO_SEED, else 0)",
    )
    hu.add_argument(
        "--backend",
        choices=["numpy", "compiled", "simulator", "all"],
        default="numpy",
        help="execution backend pool to draw from; 'all' sweeps every "
        "registered backend (a single non-numpy choice is strict: "
        "errors if unavailable on this host)",
    )
    hu.add_argument(
        "--reduce",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="shrink each failure to a 1-minimal reproducer before "
        "filing (--no-reduce files the raw failing case)",
    )
    hu.add_argument(
        "--corpus",
        metavar="DIR",
        default=None,
        help="file minimized reproducers into this directory as JSON "
        "(the committed lane uses tests/hunt/corpus)",
    )
    hu.add_argument(
        "--wisdom",
        metavar="PATH",
        default=None,
        help="extend the config space with tuned-plan provenance: cases "
        "whose lane carries a measured ranking in this wisdom file "
        "adopt its best strategy (provenance=wisdom), so the fuzzer "
        "hammers exactly the plans production would load",
    )
    hu.add_argument(
        "--nus",
        default="1,2,4",
        help="comma-separated vec(ν) pool for the vectorized-term lane "
        "(e.g. '1' restores the scalar-only sweep; '2,4' fuzzes only "
        "ν-way plans)",
    )
    hu.add_argument(
        "--chaos",
        metavar="SPEC",
        default=None,
        help="sabotage the oracle pipeline, e.g. 'hunt.exec_corrupt:1.0' "
        "or 'hunt.plan_sabotage:1.0' — the hunt must find and reduce "
        "the planted failure (the CI inverted lane)",
    )
    hu.add_argument(
        "--chaos-seed",
        type=int,
        default=0,
        help="seed for the chaos fault plan's random stream",
    )
    add_trace_flag(hu)
    hu.set_defaults(fn=_cmd_hunt)
    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
