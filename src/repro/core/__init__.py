"""The paper's primary contribution, in one place.

The shared-memory extension of Spiral consists of (1) the tagged parallel
constructs and the Definition 1 optimality predicate, (2) the Table 1
rewriting rules, (3) the derivation driver that turns the Cooley-Tukey FFT
into the multicore Cooley-Tukey FFT (Eq. 14), and (4) the multithreaded
backends.  This module re-exports that core surface; the implementation
lives in :mod:`repro.spl`, :mod:`repro.rewrite`, :mod:`repro.sigma`,
:mod:`repro.codegen` and :mod:`repro.smp`.
"""

from ..codegen import generate, generate_c
from ..frontend import SpiralSMP, generate_fft, spiral_formula
from ..rewrite.derive import (
    ParallelizationError,
    build_eq14,
    derive_multicore_ct,
    parallelization_rules,
    parallelize,
)
from ..rewrite.smp_rules import smp_rules
from ..spl.parallel import LinePerm, ParDirectSum, ParTensor, SMP, smp
from ..spl.properties import check_fully_optimized, is_fully_optimized

__all__ = [
    "LinePerm",
    "ParDirectSum",
    "ParTensor",
    "ParallelizationError",
    "SMP",
    "SpiralSMP",
    "build_eq14",
    "check_fully_optimized",
    "derive_multicore_ct",
    "generate",
    "generate_c",
    "generate_fft",
    "is_fully_optimized",
    "parallelization_rules",
    "parallelize",
    "smp",
    "smp_rules",
    "spiral_formula",
]
