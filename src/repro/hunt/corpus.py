"""The committed regression corpus: minimized reproducers as JSON.

Every failure the hunt minimizes is filed into ``tests/hunt/corpus/`` as
a small self-contained JSON case: the shrunk :class:`~repro.hunt.gen.HuntCase`,
the 1-minimal SPL term (when formula pruning fired), and the recorded
failure verdict.  ``tests/hunt/test_corpus.py`` replays every committed
file through the live oracle stack and requires it to *pass* — a corpus
entry is a bug that has been fixed, and the lane keeps it fixed forever.

Term serialization covers every structural SPL node the frontend and the
shared-memory rewriter emit (identity, butterfly, DFT symbol, diagonals,
twiddles, permutations, products, tensors, direct sums, and the tagged
parallel constructs).  :class:`DiagFunc` closures are the one
non-serializable leaf; they never survive reduction of frontend formulas
(the frontend emits :class:`Twiddle`/:class:`Diag`), and hitting one
raises :class:`TermSerializationError` rather than writing a lossy file.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

import numpy as np

from ..spl.expr import Compose, DirectSum, Expr, Tensor
from ..spl.matrices import DFT, F2, Diag, I, L, Perm, Twiddle
from ..spl.parallel import SMP, LinePerm, ParDirectSum, ParTensor
from .gen import HuntCase
from .oracles import Verdict

#: corpus file format version (bump on incompatible change)
CORPUS_VERSION = 1


class TermSerializationError(ValueError):
    """An SPL term contains a node the corpus format cannot round-trip."""


def term_to_json(term: Expr) -> dict:
    """Serialize an SPL term to a JSON-able tree (see :func:`term_from_json`)."""
    if isinstance(term, I):
        return {"op": "I", "n": term.n}
    if isinstance(term, F2):
        return {"op": "F2"}
    if isinstance(term, DFT):
        return {"op": "DFT", "n": term.n}
    if isinstance(term, L):
        return {"op": "L", "size": term.mn, "stride": term.m}
    if isinstance(term, Twiddle):
        return {"op": "Twiddle", "m": term.m, "n": term.n}
    if isinstance(term, Diag):
        return {
            "op": "Diag",
            "values": [[float(v.real), float(v.imag)] for v in term.values],
        }
    if isinstance(term, Perm):
        return {"op": "Perm", "perm": [int(k) for k in term.perm]}
    if isinstance(term, Compose):
        return {"op": "Compose", "factors": [term_to_json(f) for f in term.factors]}
    if isinstance(term, Tensor):
        return {"op": "Tensor", "factors": [term_to_json(f) for f in term.factors]}
    if isinstance(term, ParTensor):
        return {"op": "ParTensor", "p": term.p, "child": term_to_json(term.child)}
    if isinstance(term, ParDirectSum):
        return {
            "op": "ParDirectSum",
            "blocks": [term_to_json(b) for b in term.blocks],
        }
    if isinstance(term, DirectSum):
        return {
            "op": "DirectSum",
            "blocks": [term_to_json(b) for b in term.blocks],
        }
    if isinstance(term, LinePerm):
        return {
            "op": "LinePerm",
            "mu": term.mu,
            "perm": term_to_json(term.perm_expr),
        }
    if isinstance(term, SMP):
        return {
            "op": "SMP", "p": term.p, "mu": term.mu,
            "child": term_to_json(term.child),
        }
    raise TermSerializationError(
        f"cannot serialize SPL node {type(term).__name__}"
    )


def term_from_json(data: dict) -> Expr:
    """Inverse of :func:`term_to_json`."""
    op = data.get("op")
    if op == "I":
        return I(data["n"])
    if op == "F2":
        return F2()
    if op == "DFT":
        return DFT(data["n"])
    if op == "L":
        return L(data["size"], data["stride"])
    if op == "Twiddle":
        return Twiddle(data["m"], data["n"])
    if op == "Diag":
        return Diag(np.array([complex(re, im) for re, im in data["values"]]))
    if op == "Perm":
        return Perm(data["perm"])
    if op == "Compose":
        return Compose(*[term_from_json(f) for f in data["factors"]])
    if op == "Tensor":
        return Tensor(*[term_from_json(f) for f in data["factors"]])
    if op == "ParTensor":
        return ParTensor(data["p"], term_from_json(data["child"]))
    if op == "ParDirectSum":
        return ParDirectSum([term_from_json(b) for b in data["blocks"]])
    if op == "DirectSum":
        return DirectSum(*[term_from_json(b) for b in data["blocks"]])
    if op == "LinePerm":
        return LinePerm(term_from_json(data["perm"]), data["mu"])
    if op == "SMP":
        return SMP(data["p"], data["mu"], term_from_json(data["child"]))
    raise TermSerializationError(f"unknown SPL op {op!r}")


@dataclass
class Reproducer:
    """One corpus entry: a minimized failing case plus its provenance."""

    case: HuntCase
    term: Optional[Expr] = None
    #: the recorded failure this case originally exhibited
    failure_kind: str = ""
    failure_oracle: str = ""
    failure_detail: str = ""
    #: the un-reduced originating case and its formula node count
    origin: Optional[HuntCase] = None
    origin_nodes: int = 0
    #: free-form triage note (who filed it, what bug it pinned)
    note: str = ""
    #: accepted shrink kinds, in order (provenance for triage)
    trail: list = field(default_factory=list)

    def to_json(self) -> dict:
        data = {
            "version": CORPUS_VERSION,
            "case": self.case.to_json(),
            "term": None if self.term is None else term_to_json(self.term),
            "failure": {
                "kind": self.failure_kind,
                "oracle": self.failure_oracle,
                "detail": self.failure_detail,
            },
            "note": self.note,
            "trail": list(self.trail),
        }
        if self.origin is not None:
            data["origin"] = {
                "case": self.origin.to_json(),
                "nodes": self.origin_nodes,
            }
        return data

    @classmethod
    def from_json(cls, data: dict) -> "Reproducer":
        version = data.get("version")
        if version != CORPUS_VERSION:
            raise ValueError(
                f"corpus version {version!r} != {CORPUS_VERSION}"
            )
        failure = data.get("failure", {})
        origin = data.get("origin")
        return cls(
            case=HuntCase.from_json(data["case"]),
            term=(
                None if data.get("term") is None
                else term_from_json(data["term"])
            ),
            failure_kind=failure.get("kind", ""),
            failure_oracle=failure.get("oracle", ""),
            failure_detail=failure.get("detail", ""),
            origin=(
                None if origin is None
                else HuntCase.from_json(origin["case"])
            ),
            origin_nodes=0 if origin is None else int(origin["nodes"]),
            note=data.get("note", ""),
            trail=list(data.get("trail", [])),
        )

    @classmethod
    def from_failure(
        cls,
        case: HuntCase,
        verdict: Verdict,
        term: Optional[Expr] = None,
        origin: Optional[HuntCase] = None,
        origin_nodes: int = 0,
        trail: Optional[list] = None,
        note: str = "",
    ) -> "Reproducer":
        """Build an entry from a failing oracle verdict."""
        return cls(
            case=case,
            term=term,
            failure_kind=verdict.kind or "",
            failure_oracle=verdict.oracle or "",
            failure_detail=verdict.detail,
            origin=origin,
            origin_nodes=origin_nodes,
            note=note,
            trail=list(trail or []),
        )

    def slug(self) -> str:
        """Stable content-derived filename stem."""
        payload = json.dumps(self.to_json(), sort_keys=True)
        digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()[:10]
        return f"{self.case.label()}-{digest}"


def file_reproducer(repro: Reproducer, corpus_dir: str | Path) -> Path:
    """Write ``repro`` into ``corpus_dir`` (created if needed); return the path.

    Filenames are content-addressed, so re-hunting the same bug is
    idempotent and distinct bugs never collide.
    """
    corpus = Path(corpus_dir)
    corpus.mkdir(parents=True, exist_ok=True)
    path = corpus / f"{repro.slug()}.json"
    path.write_text(
        json.dumps(repro.to_json(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path


def load_corpus(corpus_dir: str | Path) -> list[tuple[Path, Reproducer]]:
    """Load every ``*.json`` reproducer under ``corpus_dir``, sorted by name."""
    corpus = Path(corpus_dir)
    if not corpus.is_dir():
        return []
    out = []
    for path in sorted(corpus.glob("*.json")):
        out.append((path, Reproducer.from_json(
            json.loads(path.read_text(encoding="utf-8"))
        )))
    return out


def replay(repro: Reproducer, pools=None, seed: int = 0) -> Verdict:
    """Re-run a corpus entry's recorded oracle on the live code.

    Replays run with **no fault plan manipulation**: a committed entry
    documents a bug that has been fixed, so the expected verdict is OK —
    a failing replay means a regression resurrected the original bug.
    """
    from .oracles import run_oracle

    return run_oracle(repro.case, term=repro.term, pools=pools, seed=seed)
