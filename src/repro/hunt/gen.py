"""Seeded case generation for the ``repro hunt`` differential fuzzer.

One sampler, two consumers: the hunt sweep draws full :class:`HuntCase`
configurations (size, requested threads, µ, breakdown strategy, batch
shape, execution backend, runtime), and the fuzz regression battery
(``tests/fuzz/test_differential.py``) draws the base 5-tuples through
:func:`sample_config_tuples` — the same dimension pools, the same draw
order, the same :mod:`repro.seeding` derivation, so ``REPRO_SEED``
reproduces both sweeps from one knob and the two lanes can never drift
apart.

Every dimension pool is deliberately adversarial: sizes span the whole
small-transform range, thread requests include non-powers-of-two (the
clamp path of :func:`repro.frontend.feasible_threads`), µ includes 1
(no false-sharing constraint) through 4, and every registered breakdown
strategy is drawn.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..rewrite.breakdown import RADIX_STRATEGIES
from ..seeding import default_seed, derive_rng

#: transform sizes the sweep samples (powers of two; the paper's range)
SIZES: list[int] = [16, 32, 64, 128, 256, 512]

#: requested processor counts — non-powers-of-two exercise thread clamping
THREAD_REQUESTS: list[int] = [1, 2, 3, 4, 5, 6, 8]

#: cache-line lengths (complex elements) the false-sharing oracle certifies
MUS: list[int] = [1, 2, 4]

#: every registered breakdown strategy, in deterministic order
STRATEGIES: list[str] = sorted(RADIX_STRATEGIES)

#: runtime pool, in narrowing order (the reducer shrinks leftward)
RUNTIMES: tuple[str, ...] = ("sequential", "pthreads", "process")

#: backend pool, in narrowing order (the reducer shrinks leftward)
BACKENDS: tuple[str, ...] = ("numpy", "compiled", "simulator")

#: vec(ν) granularities the vectorized-term lane draws (1 = scalar)
NUS: tuple[int, ...] = (1, 2, 4)


@dataclass(frozen=True)
class HuntCase:
    """One sampled configuration of the whole executor cross-product.

    ``req_threads`` is the *requested* processor count; the admissible
    count actually planned is :attr:`threads` (Eq. (14) clamping).
    Frozen and hashable so cases key caches and replay corpora directly.
    """

    n: int
    req_threads: int
    mu: int
    strategy: str
    batch: int
    backend: str = "numpy"
    runtime: str = "sequential"
    #: vec(ν) granularity the plan is derived at (1 = scalar; ν > 1
    #: formulas carry vector constructs through lowering — the
    #: vectorized-term lane of the sweep)
    nu: int = 1
    #: where the strategy came from: "generated" (pool draw) or "wisdom"
    #: (replaced by a measured-search ranking; see :mod:`repro.tune`)
    provenance: str = "generated"

    @property
    def threads(self) -> int:
        """The clamped (admissible) thread count for this configuration."""
        from ..frontend import feasible_threads

        return feasible_threads(self.n, self.req_threads, self.mu)

    def label(self) -> str:
        """Compact test-id style label, e.g. ``n64-p3-mu2-balanced-b2-numpy-seq``."""
        base = (
            f"n{self.n}-p{self.req_threads}-mu{self.mu}-{self.strategy}"
            f"-b{self.batch}-{self.backend}-{self.runtime}"
        )
        if self.nu != 1:
            base += f"-v{self.nu}"
        if self.provenance != "generated":
            base += f"-{self.provenance}"
        return base

    def to_json(self) -> dict:
        """JSON-able form (the corpus format's ``case`` object).

        ``provenance`` and ``nu`` are emitted only when non-default, so
        corpora filed before the tuning/vectorization PRs stay
        byte-identical and content hashes of purely generated scalar
        cases never move.
        """
        data = {
            "n": self.n,
            "req_threads": self.req_threads,
            "mu": self.mu,
            "strategy": self.strategy,
            "batch": self.batch,
            "backend": self.backend,
            "runtime": self.runtime,
        }
        if self.nu != 1:
            data["nu"] = self.nu
        if self.provenance != "generated":
            data["provenance"] = self.provenance
        return data

    @classmethod
    def from_json(cls, data: dict) -> "HuntCase":
        """Inverse of :meth:`to_json` (unknown keys rejected loudly)."""
        known = {
            "n", "req_threads", "mu", "strategy", "batch", "backend",
            "runtime", "nu", "provenance",
        }
        extra = set(data) - known
        if extra:
            raise ValueError(f"unknown HuntCase fields: {sorted(extra)}")
        return cls(**data)

    def with_(self, **kw) -> "HuntCase":
        """A copy with some fields replaced (the reducer's shrink step)."""
        return replace(self, **kw)


def sample_config_tuples(
    count: int, seed: int | None = None, label: str = "fuzz-sweep"
) -> list[tuple[int, int, int, str, int]]:
    """The base ``(n, req_threads, mu, strategy, batch)`` sampler.

    This is the exact draw sequence the fuzz battery has always used
    (sizes, thread requests, µ, strategy, then batch rows in [1, 4]),
    now shared: ``tests/fuzz/test_differential.py`` imports it instead
    of keeping a duplicate, and :func:`sample_cases` extends the same
    stream shape with backend/runtime draws under a different label.
    """
    base = default_seed() if seed is None else seed
    rng = derive_rng(base, label)
    cases = []
    for _ in range(count):
        cases.append(
            (
                SIZES[rng.integers(len(SIZES))],
                THREAD_REQUESTS[rng.integers(len(THREAD_REQUESTS))],
                MUS[rng.integers(len(MUS))],
                STRATEGIES[rng.integers(len(STRATEGIES))],
                int(rng.integers(1, 5)),  # batch rows
            )
        )
    return cases


def sample_cases(
    budget: int,
    seed: int | None = None,
    backends: tuple[str, ...] = ("numpy",),
    runtimes: tuple[str, ...] = RUNTIMES,
    label: str = "hunt-sweep",
    wisdom=None,
    nus: tuple[int, ...] = NUS,
) -> list[HuntCase]:
    """Sample ``budget`` :class:`HuntCase` configurations deterministically.

    The first five dimensions use the same pools and draw order as
    :func:`sample_config_tuples`; backend and runtime are drawn from the
    given pools afterwards, so the hunt's sweep is fully determined by
    ``(budget, seed, backends, runtimes)``.

    A non-None ``wisdom`` (:class:`repro.wisdom.Wisdom`) extends the
    config space with tuned-plan provenance: any drawn case whose
    ``(n, threads, mu, backend, runtime)`` lane carries a measured-search
    ranking (see :func:`repro.tune.measured_search`) adopts the ranked
    best strategy and is marked ``provenance="wisdom"`` — the fuzzer
    then hammers exactly the plans production traffic would load.  The
    substitution consumes no extra rng draws, so every pinned
    ``wisdom=None`` stream is bit-identical to before.

    The vectorized-term lane draws ``nu`` from ``nus`` on a *separately
    derived* rng stream (label ``"-nu"``), so the base configuration
    stream is also bit-identical to pre-vectorization sweeps — pinning
    ``nus=(1,)`` reproduces the old scalar sweep exactly.
    """
    for b in backends:
        if b not in BACKENDS:
            raise ValueError(f"unknown backend {b!r}; known: {BACKENDS}")
    for r in runtimes:
        if r not in RUNTIMES:
            raise ValueError(f"unknown runtime {r!r}; known: {RUNTIMES}")
    for v in nus:
        if v not in NUS:
            raise ValueError(f"unknown nu {v!r}; known: {NUS}")
    base = default_seed() if seed is None else seed
    rng = derive_rng(base, label)
    nu_rng = derive_rng(base, label + "-nu")
    cases = []
    for _ in range(budget):
        case = HuntCase(
            n=SIZES[rng.integers(len(SIZES))],
            req_threads=THREAD_REQUESTS[rng.integers(len(THREAD_REQUESTS))],
            mu=MUS[rng.integers(len(MUS))],
            strategy=STRATEGIES[rng.integers(len(STRATEGIES))],
            batch=int(rng.integers(1, 5)),
            backend=backends[rng.integers(len(backends))],
            runtime=runtimes[rng.integers(len(runtimes))],
            nu=int(nus[nu_rng.integers(len(nus))]),
        )
        if wisdom is not None:
            record = wisdom.tuning(
                case.n, case.threads, case.mu, case.backend, case.runtime
            )
            best = (record or {}).get("best", {}).get("strategy")
            if best in RADIX_STRATEGIES:
                case = case.with_(strategy=best, provenance="wisdom")
        cases.append(case)
    return cases
