"""``repro.hunt`` — differential fuzzing with automatic SPL-term reduction.

The hunt closes the loop the check/fuzz subsystems opened: a seeded
generator sweeps random plan configurations across every executor
(:mod:`~repro.hunt.gen`), an oracle stack classifies each run
(:mod:`~repro.hunt.oracles`), a diopter-style reducer shrinks failures
to 1-minimal SPL reproducers (:mod:`~repro.hunt.reduce`), and the
committed corpus replays every past bug forever
(:mod:`~repro.hunt.corpus`).  ``repro hunt`` is the CLI entry;
:func:`run_hunt` is the library one.
"""

from .corpus import (
    Reproducer,
    TermSerializationError,
    file_reproducer,
    load_corpus,
    replay,
    term_from_json,
    term_to_json,
)
from .driver import HuntConfig, HuntFinding, HuntReport, run_hunt
from .gen import (
    BACKENDS,
    NUS,
    RUNTIMES,
    STRATEGIES,
    HuntCase,
    sample_cases,
    sample_config_tuples,
)
from .oracles import ExecutorPools, Verdict, run_oracle
from .reduce import (
    Reducer,
    ReductionResult,
    ReductionState,
    shrink_candidates,
    state_size,
)

__all__ = [
    "BACKENDS",
    "NUS",
    "RUNTIMES",
    "STRATEGIES",
    "ExecutorPools",
    "HuntCase",
    "HuntConfig",
    "HuntFinding",
    "HuntReport",
    "Reducer",
    "ReductionResult",
    "ReductionState",
    "Reproducer",
    "TermSerializationError",
    "Verdict",
    "file_reproducer",
    "load_corpus",
    "replay",
    "run_hunt",
    "run_oracle",
    "sample_cases",
    "sample_config_tuples",
    "shrink_candidates",
    "state_size",
    "term_from_json",
    "term_to_json",
]
