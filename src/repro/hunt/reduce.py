"""Automatic reduction of failing hunt cases (the diopter idiom).

A failing ``(formula, config)`` pair found by the sweep is usually huge:
a 26-node SPL term on a 512-point transform with threads, µ, batching,
and a non-default backend all in play.  :class:`Reducer` shrinks it to a
**1-minimal** reproducer the way compiler differential-testing toolchains
do (DeadCodeProductions/diopter): a pluggable *interestingness test*
decides whether a candidate still exhibits the original failure, and a
greedy loop keeps applying the first single shrink step that stays
interesting until no step does.

Shrink steps, all strictly decreasing under :func:`state_size` (a
lexicographic well-ordering, so reduction terminates without relying on
the step cap):

* **vec stripping** — a ν > 1 case (or a pinned term carrying vector
  constructs) devectorizes to its scalar equivalent, ruling the vec(ν)
  rewriting in or out of the failure in one step;
* **formula-tree pruning** — replace any square subterm by the identity,
  or drop one factor of a ``Compose`` (yielding a smaller SPL term whose
  own semantics become the oracle reference);
* **size halving** — ``n -> n/2``;
* **thread shrinking** — requested processors toward 1 (most aggressive
  first);
* **µ shrinking** — cache-line length toward 1;
* **batch shrinking** — request stack toward a single vector;
* **backend narrowing** — toward the ``numpy`` interpreter;
* **runtime narrowing** — process -> pthreads -> sequential;
* **strategy canonicalization** — toward the first strategy in
  deterministic order.

Interestingness is *failure-kind* equality (:attr:`Verdict.kind`), the
standard reduction contract: a candidate that fails differently — or
whose oracle crashes — is simply not interesting.  The final state is
1-minimal by construction: the loop stops exactly when every candidate
of :func:`shrink_candidates` is uninteresting, which the property tests
re-verify independently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from ..rewrite.simplify import simplify
from ..spl.expr import Compose, Expr, compose
from ..spl.matrices import I
from .gen import BACKENDS, RUNTIMES, STRATEGIES, HuntCase
from .oracles import Verdict


@dataclass(frozen=True)
class ReductionState:
    """One point of the reduction space: a config plus an optional term.

    ``term=None`` means the case's own spiral formula (the full DFT
    oracle applies); a non-None term is a pruned SPL expression carrying
    its own semantics.
    """

    case: HuntCase
    term: Optional[Expr] = None


def _term_nodes(state: ReductionState) -> int:
    """Node count of the state's effective formula (the secondary size)."""
    if state.term is not None:
        return state.term.count_nodes()
    from ..frontend import spiral_formula

    c = state.case
    return spiral_formula(
        c.n, c.threads, c.mu, c.strategy, nu=c.nu
    ).count_nodes()


def _has_vec_constructs(term: Expr) -> bool:
    """True when any node of ``term`` is a vector construct."""
    from ..vector import InRegisterTranspose, Vec, VecDiag, VecTensor

    return any(
        isinstance(e, (VecTensor, VecDiag, InRegisterTranspose, Vec))
        for e in term.preorder()
    )


def state_size(state: ReductionState) -> tuple:
    """Lexicographic size key; every shrink step strictly decreases it.

    ``nu`` leads the order: devectorizing a term can *grow* its node
    count (untagged ``A ⊗ I_ν`` has one node more than ``A ⊗v I_ν``), so
    the strip-vec step shrinks the leading component instead — every
    scalar state keeps the exact ordering it had before the vec lane.
    """
    c = state.case
    return (
        c.nu,
        _term_nodes(state),
        c.n,
        c.req_threads,
        c.mu,
        c.batch,
        RUNTIMES.index(c.runtime),
        BACKENDS.index(c.backend),
        STRATEGIES.index(c.strategy),
    )


def _expr_paths(e: Expr, prefix: tuple = ()) -> Iterator[tuple[tuple, Expr]]:
    yield prefix, e
    for i, child in enumerate(e.children):
        yield from _expr_paths(child, prefix + (i,))


def _replace_at(e: Expr, path: tuple, repl: Expr) -> Expr:
    if not path:
        return repl
    kids = list(e.children)
    kids[path[0]] = _replace_at(kids[path[0]], path[1:], repl)
    return e.rebuild(*kids)


def prune_terms(term: Expr) -> Iterator[Expr]:
    """Strictly smaller one-step prunings of an SPL term.

    Two transformation families (both preserve well-formedness — every
    variant still lowers):

    * any square non-identity subterm becomes ``I`` of its size;
    * any ``Compose`` drops one factor (FFT pipeline factors all share
      the transform size, so the product stays dimension-consistent).

    Variants are simplified and deduplicated; only node-count-reducing
    ones are yielded (identity replacement inside a dead branch can
    otherwise be a no-op).
    """
    base_nodes = term.count_nodes()
    seen: set = {term}

    def emit(variant: Expr) -> Iterator[Expr]:
        if variant in seen:
            return
        seen.add(variant)
        if variant.count_nodes() < base_nodes:
            yield variant

    for path, node in _expr_paths(term):
        if node.rows != node.cols or isinstance(node, I):
            continue
        try:
            variant = simplify(_replace_at(term, path, I(node.rows)))
        except Exception:  # noqa: BLE001 - malformed variant: skip
            continue
        yield from emit(variant)
        if isinstance(node, Compose) and len(node.factors) >= 2:
            for i in range(len(node.factors)):
                rest = [f for j, f in enumerate(node.factors) if j != i]
                if any(f.rows != f.cols for f in rest):
                    continue
                try:
                    variant = simplify(
                        _replace_at(term, path, compose(*rest))
                    )
                except Exception:  # noqa: BLE001 - malformed variant: skip
                    continue
                yield from emit(variant)


def shrink_candidates(
    state: ReductionState,
) -> Iterator[tuple[str, ReductionState]]:
    """Every single shrink step from ``state``, most aggressive first.

    Config steps only apply while no term is pinned (they change which
    formula the frontend derives); µ/batch/backend/runtime narrowing and
    term pruning apply throughout.
    """
    c = state.case

    # vec stripping first (most aggressive: rules the ν-way rewriting in
    # or out wholesale) — a tagged term devectorizes alongside the case
    # so term semantics and the plan the config would derive stay aligned
    if c.nu > 1:
        term = state.term
        if term is not None and _has_vec_constructs(term):
            from ..vector import devectorize

            try:
                term = simplify(devectorize(term))
            except Exception:  # noqa: BLE001 - malformed strip: keep tags
                term = state.term
        yield "strip-vec", ReductionState(c.with_(nu=1), term)

    if state.term is None:
        if c.n % 2 == 0 and c.n // 2 >= 4:
            yield "halve-size", ReductionState(c.with_(n=c.n // 2))
        for t in sorted({1, c.req_threads // 2, c.req_threads - 1}):
            if 1 <= t < c.req_threads:
                yield "shrink-threads", ReductionState(c.with_(req_threads=t))
        if STRATEGIES.index(c.strategy) > 0:
            yield "canon-strategy", ReductionState(
                c.with_(strategy=STRATEGIES[0])
            )

    for mu in sorted({1, c.mu // 2}):
        if 1 <= mu < c.mu:
            yield "shrink-mu", ReductionState(
                c.with_(mu=mu), state.term
            )
    for b in sorted({1, c.batch // 2}):
        if 1 <= b < c.batch:
            yield "shrink-batch", ReductionState(
                c.with_(batch=b), state.term
            )
    if BACKENDS.index(c.backend) > 0:
        yield "narrow-backend", ReductionState(
            c.with_(backend=BACKENDS[0]), state.term
        )
    if RUNTIMES.index(c.runtime) > 0:
        for r in RUNTIMES[: RUNTIMES.index(c.runtime)]:
            yield "narrow-runtime", ReductionState(
                c.with_(runtime=r), state.term
            )

    # formula-tree pruning: pin (or further prune) the term
    if state.term is None:
        from ..frontend import spiral_formula

        base = spiral_formula(c.n, c.threads, c.mu, c.strategy)
    else:
        base = state.term
    for variant in prune_terms(base):
        yield "prune-term", ReductionState(c, variant)


@dataclass
class ReductionStep:
    """One accepted shrink: what was applied and where it landed."""

    kind: str
    state: ReductionState
    size: tuple


@dataclass
class ReductionResult:
    """Outcome of one :meth:`Reducer.reduce` run."""

    original: ReductionState
    final: ReductionState
    failure: Verdict
    #: accepted shrink trail, in order (empty = already minimal)
    steps: list[ReductionStep] = field(default_factory=list)
    #: candidate oracle evaluations spent
    evaluations: int = 0
    #: True when the loop stopped because no candidate was interesting
    #: (1-minimality); False when the step cap cut it short
    minimal: bool = False

    @property
    def original_size(self) -> tuple:
        return state_size(self.original)

    @property
    def final_size(self) -> tuple:
        return state_size(self.final)


class Reducer:
    """Greedy 1-minimal reducer over :func:`shrink_candidates`.

    ``oracle`` maps a :class:`ReductionState` to a :class:`Verdict`; the
    interestingness test is "fails with the same :attr:`Verdict.kind` as
    the original failure" (diopter's pluggable-predicate idiom — pass a
    custom ``interesting`` to override).  ``max_steps`` bounds accepted
    shrinks and ``max_evaluations`` bounds total oracle spend; the
    strictly-decreasing size order makes both caps safety nets rather
    than the termination argument.
    """

    def __init__(
        self,
        oracle: Callable[[ReductionState], Verdict],
        interesting: Optional[
            Callable[[Verdict, Verdict], bool]
        ] = None,
        max_steps: int = 256,
        max_evaluations: int = 10_000,
    ):
        self._oracle = oracle
        self._interesting = interesting or (
            lambda base, v: (not v.ok) and v.kind == base.kind
        )
        self.max_steps = max_steps
        self.max_evaluations = max_evaluations

    def _try(self, state: ReductionState) -> Verdict:
        try:
            return self._oracle(state)
        except Exception as exc:  # noqa: BLE001 - crash = not interesting
            return Verdict(
                False, "oracle-crash", "reduce",
                f"{type(exc).__name__}: {exc}",
            )

    def reduce(
        self, state: ReductionState, failure: Optional[Verdict] = None
    ) -> ReductionResult:
        """Shrink ``state`` to a 1-minimal interesting reproducer."""
        base = failure if failure is not None else self._try(state)
        result = ReductionResult(original=state, final=state, failure=base)
        if base.ok:
            result.minimal = True
            return result

        current = state
        size = state_size(current)
        while len(result.steps) < self.max_steps:
            advanced = False
            for kind, cand in shrink_candidates(current):
                cand_size = state_size(cand)
                if cand_size >= size:
                    continue
                if result.evaluations >= self.max_evaluations:
                    break
                result.evaluations += 1
                verdict = self._try(cand)
                if self._interesting(base, verdict):
                    current, size = cand, cand_size
                    result.steps.append(ReductionStep(kind, cand, cand_size))
                    advanced = True
                    break
            if not advanced:
                result.minimal = True
                break
        result.final = current
        return result
