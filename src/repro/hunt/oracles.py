"""The hunt's oracle stack: one verdict per (case, term) evaluation.

Four oracles compose, evaluated in a fixed order so a failing case
classifies deterministically (the reducer's interestingness test matches
on the resulting :attr:`Verdict.kind`):

``build``
    The pipeline itself: formula derivation/expansion, Σ-SPL lowering,
    and backend stage construction must not raise.
``numeric``
    Index-for-index output comparison.  For a full DFT configuration the
    reference is ``np.fft.fft``; for a pruned SPL term the reference is
    the term's own structural semantics (``term.apply`` — every SPL
    expression *is* a matrix), which is what makes formula-tree
    reduction possible at all: a pruned term no longer computes a DFT
    but still has exact semantics every executor must agree with.
``dynamic-check``
    The Definition 1 runtime verdict from :func:`repro.check.check_program`
    (races, false sharing at µ, load balance, barrier elision).
``structural``
    :func:`repro.spl.is_fully_optimized` on the derived formula (full
    DFT configurations with threads > 1 only — pruned terms make no
    Definition 1 claim).

Two ``hunt.*`` fault-plane points prove the pipeline end to end (see
:mod:`repro.faults`): ``hunt.exec_corrupt`` corrupts one element of the
executed output before comparison (the numeric oracle must fail), and
``hunt.plan_sabotage`` passes a µ-misaligned-split copy of the plan to
the dynamic checker (the check oracle must fail).  Both fire through the
active :class:`~repro.faults.FaultPlan`, so ``repro hunt --chaos
hunt.exec_corrupt:1.0`` is the self-test lane CI inverts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..seeding import derive_rng
from ..spl.expr import COMPLEX, Expr
from .gen import HuntCase

#: |y - ref| tolerance of the numeric oracle (measured headroom ~2e-12
#: at n=512; see tests/fuzz/test_differential.py)
ATOL = 1e-9


@dataclass(frozen=True)
class Verdict:
    """Outcome of one oracle-stack evaluation."""

    ok: bool
    #: failure class: "build-error" | "numeric" | "dynamic-check" | "structural"
    kind: Optional[str] = None
    #: which oracle flagged, with executor context (informational)
    oracle: Optional[str] = None
    detail: str = ""

    def __str__(self) -> str:
        if self.ok:
            return "OK"
        return f"FAIL[{self.kind}] {self.oracle}: {self.detail}"


@dataclass
class ExecutorPools:
    """Lazily built, sweep-long caches of the expensive runtimes.

    Thread pools and process pools are keyed by worker count and reused
    across every case and every reduction step; :meth:`close` tears the
    whole set down (the driver's ``finally``).
    """

    _threads: dict = field(default_factory=dict)
    _procs: dict = field(default_factory=dict)

    def pthreads(self, t: int):
        """The shared ``PThreadsRuntime(t)`` (built on first use)."""
        from ..smp import PThreadsRuntime

        if t not in self._threads:
            self._threads[t] = PThreadsRuntime(t)
        return self._threads[t]

    def process(self, t: int):
        """The shared ``ProcessPoolRuntime(t)`` (built on first use)."""
        from ..mp import ProcessPoolRuntime

        if t not in self._procs:
            self._procs[t] = ProcessPoolRuntime(t)
        return self._procs[t]

    def close(self) -> None:
        """Close every cached runtime (idempotent)."""
        for rt in self._threads.values():
            rt.close()
        self._threads.clear()
        for rt in self._procs.values():
            rt.close()
        self._procs.clear()


def _input_stack(case: HuntCase, seed: int) -> np.ndarray:
    """The deterministic ``(batch, n)`` input drawn from the case's stream."""
    # nu joins the key only when non-default, so every scalar case keeps
    # the exact input stream it had before the vectorized-term lane
    key = [
        case.n, case.req_threads, case.mu,
        case.strategy, case.batch, case.backend, case.runtime,
    ]
    if case.nu != 1:
        key.append(f"v{case.nu}")
    rng = derive_rng(seed, "hunt-input", *key)
    shape = (case.batch, case.n)
    return (
        rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
    ).astype(COMPLEX)


def _execute(
    case: HuntCase,
    program,
    X: np.ndarray,
    pools: ExecutorPools,
    term: Optional[Expr],
) -> np.ndarray:
    """Run the lowered plan on the case's backend × runtime; return Y.

    The process runtime regenerates plans from a :class:`PlanSpec` in
    its workers, which only round-trips full DFT configurations — for a
    pruned term the process lane degrades to in-process sequential
    execution of the same backend stages (the plan, not the transport,
    is under test at that point).
    """
    from ..codegen.registry import resolve_backend
    from ..serve.batch_exec import run_batched
    from ..smp import SequentialRuntime

    t = case.threads
    if case.runtime == "process" and term is None and t > 1:
        from ..mp import PlanSpec

        spec = PlanSpec(
            n=case.n, threads=t, mu=case.mu, strategy=case.strategy,
            backend=case.backend, nu=case.nu,
        )
        Y, _ = pools.process(t).execute_spec(spec, X)
        return np.asarray(Y)

    stages = resolve_backend(case.backend).build_stages(program)
    if case.runtime == "pthreads" and t > 1:
        runtime = pools.pthreads(t)
        Y, _ = run_batched(stages, program.size, X, runtime)
        return Y
    runtime = SequentialRuntime()
    try:
        Y, _ = run_batched(stages, program.size, X, runtime)
    finally:
        runtime.close()
    return Y


def run_oracle(
    case: HuntCase,
    term: Optional[Expr] = None,
    pools: Optional[ExecutorPools] = None,
    seed: int = 0,
    atol: float = ATOL,
) -> Verdict:
    """Evaluate the full oracle stack on ``(case, term)``.

    ``term=None`` means "the case's own spiral formula" (the full DFT
    oracle applies); a non-None ``term`` is a reduced SPL expression
    whose own semantics are the reference.  Deterministic for a fixed
    ``(case, term, seed)`` and fault plan.
    """
    from ..check import check_program
    from ..check.negative import inject_misaligned_split
    from ..faults import get_fault_plan
    from ..frontend import spiral_formula
    from ..sigma.lower import lower
    from ..spl import is_fully_optimized

    own_pools = pools is None
    pools = pools or ExecutorPools()
    fp = get_fault_plan()
    try:
        # -- build oracle --------------------------------------------------
        try:
            if term is None:
                formula = spiral_formula(
                    case.n, case.threads, case.mu, case.strategy,
                    nu=case.nu,
                )
            else:
                formula = term
            program = lower(formula, barrier_mu=case.mu)
        except Exception as exc:  # noqa: BLE001 - classified, not raised
            return Verdict(
                False, "build-error", "build",
                f"{type(exc).__name__}: {exc}",
            )

        # -- numeric oracle ------------------------------------------------
        X = _input_stack(case, seed)
        try:
            Y = _execute(case, program, X, pools, term)
        except Exception as exc:  # noqa: BLE001 - classified, not raised
            return Verdict(
                False, "build-error",
                f"execute:{case.backend}/{case.runtime}",
                f"{type(exc).__name__}: {exc}",
            )
        if fp.enabled and fp.fired("hunt.exec_corrupt"):
            Y = Y.copy()
            Y.reshape(-1)[0] += 1.0
        ref = np.fft.fft(X, axis=-1) if term is None else formula.apply(X)
        err = np.abs(Y - ref)
        if not np.all(err <= atol):
            row, col = np.unravel_index(int(np.argmax(err)), err.shape)
            return Verdict(
                False, "numeric",
                f"differential:{case.backend}/{case.runtime}",
                f"diverges from {'np.fft' if term is None else 'term'} "
                f"semantics at [{row}, {col}]: |err|={err[row, col]:.3e}",
            )

        # -- dynamic-check oracle ------------------------------------------
        checked = program
        if fp.enabled and fp.fired("hunt.plan_sabotage"):
            checked = inject_misaligned_split(program)
        report = check_program(checked, case.mu)
        if not report.ok:
            first = report.errors[0]
            return Verdict(
                False, "dynamic-check", f"check:{first.kind}",
                f"{len(report.errors)} error finding(s); first: {first}",
            )

        # -- structural oracle ---------------------------------------------
        # Definition 1 is stated over scalar constructs; ν > 1 formulas
        # carry vec tags (their structure is certified at derivation by
        # the vectorize rules), so the claim applies to scalar plans only.
        if term is None and case.threads > 1 and case.nu == 1:
            if not is_fully_optimized(formula, case.threads, case.mu):
                return Verdict(
                    False, "structural", "definition-1",
                    f"derived formula violates Definition 1 for "
                    f"p={case.threads}, mu={case.mu}",
                )
        return Verdict(True)
    finally:
        if own_pools:
            pools.close()
