"""The hunt sweep: sample, judge, reduce, file.

:func:`run_hunt` drives the whole pipeline the ``repro hunt`` CLI verb
exposes: draw ``budget`` seeded :class:`~repro.hunt.gen.HuntCase`
configurations, evaluate each through the oracle stack, and for every
failure run the diopter-style reducer and file the 1-minimal reproducer
into the corpus directory.  Deterministic for a fixed ``(budget, seed,
backends, runtimes)`` and fault plan — the CI inverted lane relies on
this to assert that a seeded sabotage *always* yields a minimized,
strictly smaller reproducer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from .corpus import Reproducer, TermSerializationError, file_reproducer
from .gen import NUS, RUNTIMES, HuntCase, sample_cases
from .oracles import ExecutorPools, Verdict, run_oracle
from .reduce import ReductionState, Reducer, state_size


@dataclass(frozen=True)
class HuntConfig:
    """One hunt invocation's knobs (mirrors the CLI flags)."""

    budget: int = 64
    seed: Optional[int] = None
    backends: tuple[str, ...] = ("numpy",)
    runtimes: tuple[str, ...] = RUNTIMES
    reduce: bool = True
    corpus_dir: Optional[str] = None
    max_steps: int = 256
    #: wisdom file whose measured rankings extend the config space with
    #: tuned-plan provenance (``repro hunt --wisdom``); None = generated only
    wisdom_path: Optional[str] = None
    #: vec(ν) granularities the vectorized-term lane samples; ``(1,)``
    #: reproduces the pre-vectorization scalar sweep exactly
    nus: tuple[int, ...] = NUS


@dataclass
class HuntFinding:
    """One failing case: the original verdict plus its reduction."""

    case: HuntCase
    verdict: Verdict
    reduced: Optional[ReductionState] = None
    reduced_minimal: bool = False
    reduction_steps: int = 0
    original_size: tuple = ()
    reduced_size: tuple = ()
    corpus_path: Optional[Path] = None


@dataclass
class HuntReport:
    """The sweep's outcome; ``ok`` iff no case failed its oracle."""

    config: HuntConfig
    cases: int = 0
    passed: int = 0
    findings: list[HuntFinding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def render_text(self) -> str:
        lines = [
            f"hunt: {self.cases} case(s) swept "
            f"(seed={self.config.seed}, backends={list(self.config.backends)}, "
            f"runtimes={list(self.config.runtimes)})",
            f"  passed: {self.passed}",
            f"  failed: {len(self.findings)}",
        ]
        for f in self.findings:
            lines.append(f"  FAIL {f.case.label()}: {f.verdict}")
            if f.reduced is not None:
                nodes_before = f.original_size[0] if f.original_size else "?"
                nodes_after = f.reduced_size[0] if f.reduced_size else "?"
                tag = "1-minimal" if f.reduced_minimal else "step-capped"
                lines.append(
                    f"       reduced [{tag}] in {f.reduction_steps} step(s): "
                    f"{nodes_before} -> {nodes_after} nodes, "
                    f"case {f.reduced.case.label()}"
                )
            if f.corpus_path is not None:
                lines.append(f"       filed: {f.corpus_path}")
        if self.ok:
            lines.append("  all executors agree with the oracle stack")
        return "\n".join(lines)


def run_hunt(config: HuntConfig) -> HuntReport:
    """Execute one differential-fuzzing sweep (see module docstring)."""
    wisdom = None
    if config.wisdom_path is not None:
        from ..wisdom import Wisdom

        wisdom = Wisdom(config.wisdom_path)
    cases = sample_cases(
        config.budget,
        seed=config.seed,
        backends=config.backends,
        runtimes=config.runtimes,
        wisdom=wisdom,
        nus=config.nus,
    )
    report = HuntReport(config=config, cases=len(cases))
    pools = ExecutorPools()
    try:
        for case in cases:
            verdict = run_oracle(case, pools=pools)
            if verdict.ok:
                report.passed += 1
                continue
            finding = HuntFinding(case=case, verdict=verdict)
            reproducer = None
            if config.reduce:
                reducer = Reducer(
                    lambda st: run_oracle(st.case, term=st.term, pools=pools),
                    max_steps=config.max_steps,
                )
                state = ReductionState(case)
                result = reducer.reduce(state, failure=verdict)
                finding.reduced = result.final
                finding.reduced_minimal = result.minimal
                finding.reduction_steps = len(result.steps)
                finding.original_size = result.original_size
                finding.reduced_size = result.final_size
                reproducer = Reproducer.from_failure(
                    result.final.case,
                    verdict,
                    term=result.final.term,
                    origin=case,
                    origin_nodes=result.original_size[0],
                    trail=[s.kind for s in result.steps],
                )
            else:
                reproducer = Reproducer.from_failure(case, verdict)
            if config.corpus_dir is not None:
                try:
                    finding.corpus_path = file_reproducer(
                        reproducer, config.corpus_dir
                    )
                except TermSerializationError:
                    # File the config-only case rather than nothing.
                    fallback = Reproducer.from_failure(
                        reproducer.case, verdict, origin=case,
                    )
                    finding.corpus_path = file_reproducer(
                        fallback, config.corpus_dir
                    )
            report.findings.append(finding)
    finally:
        pools.close()
    return report
