"""Shared-memory runtimes that execute generated stage plans.

A *plan* is a list of :class:`PlanStage` entries; each stage is a callable
``work(proc, src, dst)`` that performs processor ``proc``'s share of one
pipeline stage reading ``src`` and writing ``dst``.  Three runtimes execute
plans, mirroring the paper's backends:

* :class:`PThreadsRuntime` — a persistent SPMD worker pool with
  sense-reversing barriers; barriers are *skipped* for stages whose dataflow
  is processor-local (``needs_barrier=False``), reproducing the generated
  pthreads code's minimal synchronization.
* :class:`OpenMPRuntime` — fork-join: every parallel stage spawns fresh
  threads and joins them (a faithful model of a non-pooling OpenMP runtime,
  and the behaviour the paper observed for FFTW's per-call threading).
* :class:`SequentialRuntime` — single-processor reference.

CPython's GIL prevents actual speedup here (NumPy kernels release it only
partially); these runtimes establish *correctness* of the generated
multithreaded schedules — every thread executes exactly the loops the
formula assigned to its processor.  For measured wall-clock scaling there
are two complements: the simulated machines (``repro.machine``) model the
paper's platforms, and :class:`repro.mp.ProcessPoolRuntime` executes the
same plans across OS processes over shared memory for real parallelism
(``repro bench --runtime process``).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from ..faults import FaultInjected, get_fault_plan
from ..trace import get_tracer
from .barrier import SenseReversingBarrier

StageWork = Callable[[int, np.ndarray, np.ndarray], None]


class WorkerPoolBroken(RuntimeError):
    """A pool worker died mid-plan; the pool can no longer run lockstep.

    Raised by :meth:`PThreadsRuntime.execute` instead of hanging when a
    worker thread disappears (crash, injected fault).  The pool is
    permanently broken afterwards (``healthy`` is False); holders are
    expected to ``close()`` it and build a replacement — which is exactly
    what the serving supervisor does.
    """


@dataclass
class PlanStage:
    """One executable pipeline stage.

    ``nprocs`` is the number of processor shares the *plan* defines for this
    stage (a property of the generated program, not of the runtime executing
    it); sequential runtimes iterate over all shares on one thread.
    """

    work: StageWork
    parallel: bool
    needs_barrier: bool
    name: str = ""
    nprocs: int = 1


@dataclass
class ExecutionStats:
    """Synchronization accounting of one plan execution.

    The counters mean the same thing on every runtime, so traces are
    comparable across backends:

    * ``barriers`` — synchronization points the runtime *actually executed*:
      sense-reversing barrier episodes for the pthreads pool, fork-join
      joins for the OpenMP runtime.  Stages that fork no threads (sequential
      stages, or parallel stages with one processor share) cost no barrier
      on a fork-join runtime and are not counted.  Always 0 for
      :class:`SequentialRuntime`.
    * ``threads_spawned`` — OS threads created during the call.  0 for the
      sequential runtime *and* for the pthreads pool (workers persist).
    * ``parallel_stages`` / ``sequential_stages`` — counted by the plan's
      ``PlanStage.parallel`` flag (a property of the generated program), not
      by how the runtime happened to execute the stage.
    """

    barriers: int = 0
    threads_spawned: int = 0
    parallel_stages: int = 0
    sequential_stages: int = 0


class Runtime:
    """Base class: executes a plan over double buffers."""

    #: number of workers this runtime drives
    p: int

    def execute(
        self, stages: Sequence[PlanStage], x: np.ndarray, size: int
    ) -> tuple[np.ndarray, ExecutionStats]:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial default
        pass

    def __enter__(self) -> "Runtime":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SequentialRuntime(Runtime):
    """Runs every stage's work items on the calling thread.

    Reports ``barriers == 0`` and ``threads_spawned == 0`` by construction:
    a single thread synchronizes with nobody, so the zeros make sequential
    traces directly comparable with the threaded runtimes'.
    """

    def __init__(self, p: int = 1):
        self.p = p

    def execute(self, stages, x, size):
        tr = get_tracer()
        stats = ExecutionStats()
        src = np.array(x, dtype=np.complex128, copy=True)
        dst = np.empty_like(src)
        for si, stage in enumerate(stages):
            if tr.enabled:
                t0 = time.perf_counter()
                with tr.span(stage.name or f"stage{si}", "smp", tid=0,
                             stage=si, proc=0):
                    for proc in range(max(1, stage.nprocs)):
                        stage.work(proc, src, dst)
                tr.count("smp.stage_wall_s", time.perf_counter() - t0,
                         stage=si, proc=0)
            else:
                for proc in range(max(1, stage.nprocs)):
                    stage.work(proc, src, dst)
            if stage.parallel:
                stats.parallel_stages += 1
            else:
                stats.sequential_stages += 1
            src, dst = dst, src
        return src, stats


class PThreadsRuntime(Runtime):
    """Persistent SPMD worker pool (the paper's pthreads backend).

    Workers are created once and reused across ``execute`` calls (thread
    pooling).  Within a plan, workers run the stage sequence in lockstep;
    a barrier is executed only before stages with ``needs_barrier=True`` and
    around sequential stages.
    """

    def __init__(self, p: int):
        if p < 1:
            raise ValueError(f"need p >= 1 workers, got {p}")
        self.p = p
        self._barrier = SenseReversingBarrier(p)
        self._job: Optional[tuple] = None
        self._job_ready = threading.Condition()
        self._job_seq = 0
        # rendezvous of the master and the p-1 pool workers after each job
        self._done = threading.Barrier(p)
        self._shutdown = False
        self._closed = False
        self._broken = False
        self._errors: list[BaseException] = []
        self._threads = [
            threading.Thread(target=self._worker, args=(i,), daemon=True)
            for i in range(1, p)
        ]
        for t in self._threads:
            t.start()

    # -- worker loop --------------------------------------------------------

    def _worker(self, proc: int) -> None:
        seen = 0
        try:
            while True:
                with self._job_ready:
                    self._job_ready.wait_for(
                        lambda: self._shutdown or self._job_seq > seen
                    )
                    if self._shutdown:
                        return
                    seen = self._job_seq
                    job = self._job
                # a fired worker-crash fault escapes the except below and
                # kills this thread through the abort path — the pool must
                # then *fail fast*, not hang at the next barrier
                get_fault_plan().raise_if("runtime.worker_crash")
                try:
                    self._run_stages(proc, *job)
                except (FaultInjected, threading.BrokenBarrierError):
                    raise
                except BaseException as exc:  # propagate to master
                    self._errors.append(exc)
                    # this worker skipped its remaining barriers; break the
                    # lockstep so peers fail fast instead of waiting forever
                    self._barrier.abort()
                self._done.wait()
        except BaseException:
            # dying outside clean shutdown strands everyone still waiting
            # at a barrier; break both so master and peers unblock with an
            # error instead of deadlocking
            if not self._shutdown:
                self._barrier.abort()
                self._done.abort()

    def _run_stages(self, proc: int, stages, src, dst, stats) -> None:
        tr = get_tracer()
        fp = get_fault_plan()
        if fp.enabled:
            fp.stall("runtime.worker_stall")
        for si, stage in enumerate(stages):
            if stage.needs_barrier or not stage.parallel:
                self._wait_barrier(tr, proc)
            if tr.enabled:
                t0 = time.perf_counter()
                with tr.span(stage.name or f"stage{si}", "smp", tid=proc,
                             stage=si, proc=proc):
                    self._stage_work(stage, proc, src, dst)
                tr.count("smp.stage_wall_s", time.perf_counter() - t0,
                         stage=si, proc=proc)
            else:
                self._stage_work(stage, proc, src, dst)
            if not stage.parallel:
                # everyone must wait for the sequential stage to finish
                self._wait_barrier(tr, proc)
            src, dst = dst, src

    @staticmethod
    def _stage_work(stage: PlanStage, proc: int, src, dst) -> None:
        if stage.parallel:
            if proc < max(1, stage.nprocs):
                stage.work(proc, src, dst)
        elif proc == 0:
            stage.work(0, src, dst)

    def _wait_barrier(self, tr, proc: int) -> None:
        if tr.enabled:
            t0 = time.perf_counter()
            self._barrier.wait()
            tr.count("smp.barrier_wait_s", time.perf_counter() - t0,
                     proc=proc)
        else:
            self._barrier.wait()

    # -- master API ---------------------------------------------------------

    @property
    def healthy(self) -> bool:
        """True while every pool worker is alive and no job broke down."""
        return (
            not self._closed
            and not self._broken
            and not self._barrier.broken
            and all(t.is_alive() for t in self._threads)
        )

    def execute(self, stages, x, size):
        if self._closed:
            raise RuntimeError(
                "PThreadsRuntime is closed; worker pool no longer exists"
            )
        if self._broken:
            raise WorkerPoolBroken(
                f"pool of {self.p} lost a worker; rebuild the runtime"
            )
        for st in stages:
            if st.nprocs > self.p:
                raise ValueError(
                    f"plan stage {st.name!r} needs {st.nprocs} processors, "
                    f"pool has {self.p}"
                )
        stats = ExecutionStats()
        src = np.array(x, dtype=np.complex128, copy=True)
        dst = np.empty_like(src)
        self._errors.clear()
        self._barrier.reset_accounting()
        with self._job_ready:
            self._job = (list(stages), src, dst, stats)
            self._job_seq += 1
            self._job_ready.notify_all()
        # master participates as processor 0; a BrokenBarrierError on either
        # barrier means a worker died mid-job — surface WorkerPoolBroken
        # instead of deadlocking or leaking a half-synchronized pool
        master_exc: Optional[BaseException] = None
        try:
            self._run_stages(0, list(stages), src, dst, stats)
        except threading.BrokenBarrierError:
            self._broken = True
        except BaseException as exc:
            master_exc = exc
            self._barrier.abort()  # unstick workers waiting on the master
        if self.p > 1 and not self._broken:
            try:
                self._done.wait()
            except threading.BrokenBarrierError:
                self._broken = True
        # a real work exception outranks the secondary barrier breakage it
        # causes; pure breakage (a worker died) surfaces as WorkerPoolBroken
        if master_exc is not None:
            raise master_exc
        if self._errors:
            raise self._errors[0]
        if self._broken:
            raise WorkerPoolBroken(
                f"pool of {self.p} lost a worker mid-plan"
            )
        stats.barriers = self._barrier.wait_count // self.p
        stats.parallel_stages = sum(1 for s in stages if s.parallel)
        stats.sequential_stages = sum(1 for s in stages if not s.parallel)
        # _run_stages swaps its locals each stage; recover the final buffer
        # by parity (even stage count ends back in `src`)
        final = src if len(stages) % 2 == 0 else dst
        return final, stats

    def close(self) -> None:
        """Shut the pool down; idempotent (long-lived holders may race)."""
        if self._closed:
            return
        self._closed = True
        with self._job_ready:
            self._shutdown = True
            self._job_ready.notify_all()
        for t in self._threads:
            t.join(timeout=5)


class OpenMPRuntime(Runtime):
    """Fork-join runtime: threads are created per parallel region.

    Thread creation cost is paid at *every parallel stage* — the overhead
    profile of non-pooled OpenMP/per-call threading that makes small-size
    parallelization unprofitable (paper Sections 2.2 and 4).  Stages that
    fork no threads (sequential passes, one-processor shares) run inline
    and execute no join barrier.
    """

    def __init__(self, p: int):
        if p < 1:
            raise ValueError(f"need p >= 1 workers, got {p}")
        self.p = p

    def execute(self, stages, x, size):
        tr = get_tracer()
        stats = ExecutionStats()
        src = np.array(x, dtype=np.complex128, copy=True)
        dst = np.empty_like(src)
        for si, stage in enumerate(stages):
            if tr.enabled:
                t0 = time.perf_counter()
            forked = stage.parallel and stage.nprocs > 1
            if forked:
                threads = [
                    threading.Thread(target=stage.work, args=(i, src, dst))
                    for i in range(1, stage.nprocs)
                ]
                for t in threads:
                    t.start()
                stats.threads_spawned += len(threads)
                stage.work(0, src, dst)
                for t in threads:
                    t.join()
                # the join ending a fork-join region is the one implicit
                # barrier this runtime executes; stages that fork no
                # threads synchronize nothing and cost no barrier
                stats.barriers += 1
            else:
                for proc in range(max(1, stage.nprocs)):
                    stage.work(proc, src, dst)
            if stage.parallel:
                stats.parallel_stages += 1
            else:
                stats.sequential_stages += 1
            if tr.enabled:
                tr.count("smp.stage_wall_s", time.perf_counter() - t0,
                         stage=si, proc=0)
                if forked:
                    tr.count("smp.threads_spawned", stage.nprocs - 1,
                             stage=si)
            src, dst = dst, src
        return src, stats
