"""Shared-memory runtimes: thread pools, barriers, fork-join execution."""

from .barrier import SenseReversingBarrier
from .runtime import (
    ExecutionStats,
    OpenMPRuntime,
    PlanStage,
    PThreadsRuntime,
    Runtime,
    SequentialRuntime,
)

__all__ = [
    "ExecutionStats",
    "OpenMPRuntime",
    "PThreadsRuntime",
    "PlanStage",
    "Runtime",
    "SenseReversingBarrier",
    "SequentialRuntime",
]
