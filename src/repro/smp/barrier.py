"""A sense-reversing centralized barrier.

This is the classical low-latency software barrier the paper's generated
pthreads code relies on for its "low-latency minimal overhead
synchronization" (Section 3.2).  Each thread flips its local *sense*; the
last thread to arrive releases the others by flipping the shared sense.  A
condition variable stands in for the spin-wait of the C implementation
(spinning burns the GIL in CPython).
"""

from __future__ import annotations

import threading


class SenseReversingBarrier:
    """Reusable barrier for a fixed party count.

    :meth:`abort` breaks the barrier: every current and future ``wait``
    raises :class:`threading.BrokenBarrierError`.  A party that dies
    between barriers (a crashed worker thread) must abort on its way out,
    or the surviving parties would wait for an arrival that never comes.
    """

    def __init__(self, parties: int):
        if parties < 1:
            raise ValueError(f"barrier needs >= 1 parties, got {parties}")
        self.parties = parties
        self._count = parties
        self._sense = False
        self._broken = False
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._local = threading.local()
        self.wait_count = 0  # total number of wait() calls (for accounting)

    def wait(self) -> None:
        local_sense = not getattr(self._local, "sense", False)
        self._local.sense = local_sense
        with self._cond:
            if self._broken:
                raise threading.BrokenBarrierError
            self.wait_count += 1
            self._count -= 1
            if self._count == 0:
                # last arrival: reset and release everyone
                self._count = self.parties
                self._sense = local_sense
                self._cond.notify_all()
            else:
                self._cond.wait_for(
                    lambda: self._broken or self._sense == local_sense
                )
                if self._broken:
                    raise threading.BrokenBarrierError

    def abort(self) -> None:
        """Break the barrier, waking every waiter with an error."""
        with self._cond:
            self._broken = True
            self._cond.notify_all()

    @property
    def broken(self) -> bool:
        with self._lock:
            return self._broken

    def reset_accounting(self) -> None:
        self.wait_count = 0
