"""Walsh-Hadamard transform: a second transform through the same pipeline.

Spiral is a generator for *linear transforms*, not just the DFT (paper
Section 2.3); the WHT is the classic second citizen.  Its breakdown rule

    WHT_mn -> (WHT_m (x) I_n)(I_m (x) WHT_n)

has no twiddles and no stride permutation, so it exercises the Table 1
rules in their purest form: the same smp(p, mu) rewriting that produced
Eq. (14) parallelizes the WHT with zero data reshuffling.
"""

from __future__ import annotations

import numpy as np

from ..rewrite.pattern import iv
from ..rewrite.rule import Rule
from ..spl.expr import COMPLEX, Compose, Expr, SPLError, Tensor, _check_batched
from ..spl.matrices import F2, I, _require_positive


class WHT(Expr):
    """The Walsh-Hadamard transform symbol ``WHT_n`` (n a power of two).

    ``WHT_n = H_2 (x) H_2 (x) ... (x) H_2`` with ``H_2 = [[1,1],[1,-1]]``
    (unnormalized, sequency-unordered — the tensor-product form Spiral
    uses).
    """

    def __init__(self, n: int):
        self.n = _require_positive(n, "WHT size")
        if self.n & (self.n - 1):
            raise SPLError(f"WHT size must be a power of two, got {n}")
        self.rows = self.cols = self.n

    def _key(self) -> tuple:
        return (WHT, self.n)

    def apply(self, x: np.ndarray) -> np.ndarray:
        x = _check_batched(x, self.n, "WHT")
        y = x.copy()
        half = 1
        n = self.n
        while half < n:
            step = half * 2
            blocks = y.reshape(*y.shape[:-1], n // step, step)
            a = blocks[..., :half].copy()
            b = blocks[..., half:]
            blocks[..., :half] = a + b
            blocks[..., half:] = a - b
            half = step
        return y

    def to_matrix(self) -> np.ndarray:
        m = np.array([[1, 1], [1, -1]], dtype=COMPLEX)
        out = np.array([[1]], dtype=COMPLEX)
        k = 1
        while k < self.n:
            out = np.kron(out, m)
            k *= 2
        return out

    def flops(self) -> int:
        if self.n == 1:
            return 0
        # n log2 n complex additions
        return 2 * self.n * int(np.log2(self.n))


class _PWHT:
    """Pattern matching the WHT symbol, binding its size."""

    def __init__(self, n):
        self.n = n

    def match_all(self, expr, b):
        from ..rewrite.pattern import _bind_int

        if isinstance(expr, WHT):
            out = _bind_int(self.n, expr.n, b)
            if out is not None:
                yield out

    def match(self, expr, b=None):
        for out in self.match_all(expr, b or {}):
            return out
        return None


def wht_step(m: int, k: int) -> Expr:
    """One application of the WHT breakdown rule."""
    return Compose(Tensor(WHT(m), I(k)), Tensor(I(m), WHT(k)))


def _wht_build(b):
    n = b["n"]
    if n < 4:
        return None
    alts = []
    m = 2
    while m < n:
        alts.append(wht_step(m, n // m))
        m *= 2
    return alts or None


def _wht_base(b):
    if b["n"] == 2:
        return F2()  # H_2 == F_2
    if b["n"] == 1:
        return I(1)
    return None


RULE_WHT_BREAKDOWN = Rule(
    "wht-breakdown",
    _PWHT(iv("n")),
    _wht_build,
    doc="WHT_mn -> (WHT_m (x) I_n)(I_m (x) WHT_n)",
)

RULE_WHT_BASE = Rule(
    "wht-base", _PWHT(iv("n")), _wht_base, doc="WHT_2 -> F_2, WHT_1 -> I_1"
)


def expand_wht(n: int, min_leaf: int = 2, balanced: bool = True) -> Expr:
    """Fully expanded WHT formula for size ``n``."""
    from ..rewrite.simplify import simplify

    def build(size: int) -> Expr:
        if size == 1:
            return I(1)
        if size == 2:
            return F2()
        if size <= min_leaf:
            return WHT(size)
        if balanced:
            m = 1 << (size.bit_length() - 1) // 2
            m = max(2, m)
        else:
            m = 2
        k = size // m
        return Compose(Tensor(build(m), I(k)), Tensor(I(m), build(k)))

    return simplify(build(n))


def parallel_wht(n: int, p: int, mu: int, min_leaf: int = 32) -> Expr:
    """A fully optimized (Definition 1) shared-memory WHT via Table 1.

    Chooses the top split so both factors satisfy the divisibility
    preconditions, then runs the *same* parallelization as the DFT.
    """
    from ..rewrite.derive import parallelize

    pmu = p * mu
    if n % (pmu * pmu):
        raise SPLError(
            f"parallel WHT needs (p*mu)^2 = {pmu * pmu} to divide n = {n}"
        )
    m = 1
    while m < pmu or n // m < pmu or (n // m) % pmu:
        m *= 2
        if m >= n:
            raise SPLError(f"no admissible WHT split of {n} for p={p}, mu={mu}")
    f = parallelize(wht_step(m, n // m), p, mu)
    return _expand_wht_leaves(f, min_leaf)


def _expand_wht_leaves(expr: Expr, min_leaf: int) -> Expr:
    from ..rewrite.simplify import simplify

    def walk(e: Expr) -> Expr:
        if isinstance(e, WHT) and e.n > min_leaf:
            return walk(expand_wht(e.n, min_leaf=min_leaf))
        if e.children:
            return e.rebuild(*(walk(c) for c in e.children))
        return e

    return simplify(walk(expr))
