"""FFT-based convolution and derived real-world operations.

The application layer the paper's introduction motivates: fast convolution
and correlation built on generated DFT programs.  The inverse transform is
obtained from the *forward* generated program through the conjugation
identity ``IDFT(X) = conj(DFT(conj(X))) / n``, so everything below runs on
Spiral-generated code.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..codegen.python_backend import GeneratedProgram
from ..frontend import generate_fft

Transform = Callable[[np.ndarray], np.ndarray]


def inverse_from_forward(fft: Transform, n: int) -> Transform:
    """Build an inverse DFT from a forward DFT program."""

    def ifft(X: np.ndarray) -> np.ndarray:
        return np.conj(fft(np.conj(X))) / n

    return ifft


class FFTConvolver:
    """Circular convolution engine over a generated FFT program.

    Plans once per size (like a library would); ``convolve`` then costs two
    forward transforms plus a pointwise product and one inverse.
    """

    def __init__(
        self,
        n: int,
        threads: int = 1,
        mu: int = 4,
        program: Optional[GeneratedProgram] = None,
    ):
        self.n = n
        self.fft: GeneratedProgram = program or generate_fft(
            n, threads=threads, mu=mu
        )
        self.ifft = inverse_from_forward(self.fft, n)

    def convolve(self, x: np.ndarray, h: np.ndarray) -> np.ndarray:
        """Circular convolution ``(x * h)[k] = sum_j x[j] h[(k-j) mod n]``."""
        x = np.asarray(x, dtype=np.complex128)
        h = np.asarray(h, dtype=np.complex128)
        if x.shape != (self.n,) or h.shape != (self.n,):
            raise ValueError(f"inputs must have shape ({self.n},)")
        return self.ifft(self.fft(x) * self.fft(h))

    def correlate(self, x: np.ndarray, h: np.ndarray) -> np.ndarray:
        """Circular cross-correlation of ``x`` with ``h``."""
        x = np.asarray(x, dtype=np.complex128)
        h = np.asarray(h, dtype=np.complex128)
        return self.ifft(self.fft(x) * np.conj(self.fft(h)))


def linear_convolve(x: np.ndarray, h: np.ndarray, threads: int = 1) -> np.ndarray:
    """Linear convolution via zero-padding to the next admissible size."""
    x = np.asarray(x, dtype=np.complex128)
    h = np.asarray(h, dtype=np.complex128)
    full = x.size + h.size - 1
    n = 1
    while n < full:
        n *= 2
    conv = FFTConvolver(n, threads=threads)
    xp = np.zeros(n, dtype=np.complex128)
    hp = np.zeros(n, dtype=np.complex128)
    xp[: x.size] = x
    hp[: h.size] = h
    return conv.convolve(xp, hp)[:full]
