"""Batched transforms: many independent DFTs, parallelized over the batch.

A batch of ``b`` transforms of size ``n`` is the formula ``I_b (x) DFT_n``
— exactly the shape rule (9) parallelizes in one step, with contiguous
per-processor work and zero inter-processor communication (no transposes
at all).  This is the most favorable parallel workload the framework
expresses and a common real-world one (multichannel signal processing,
rows of images, OFDM symbols, ...).
"""

from __future__ import annotations

import numpy as np

from ..rewrite.breakdown import expand_dft
from ..rewrite.derive import parallelize
from ..spl.expr import Expr, SPLError, Tensor
from ..spl.matrices import DFT, I


def batch_fft_formula(batch: int, n: int) -> Expr:
    """``I_batch (x) DFT_n``: independent transforms over contiguous rows."""
    return Tensor(I(batch), DFT(n))


def parallel_batch_fft(
    batch: int, n: int, p: int, mu: int, min_leaf: int = 32
) -> Expr:
    """Fully optimized batched FFT via rule (9).

    Preconditions: ``p | batch`` (equal batch shares per processor) and
    ``mu | n`` (rows are cache-line aligned).
    """
    if batch % p:
        raise SPLError(f"batch {batch} must be divisible by p={p}")
    if n % mu:
        raise SPLError(f"row length {n} must be a multiple of mu={mu}")
    f = parallelize(batch_fft_formula(batch, n), p, mu)
    return expand_dft(f, "balanced", min_leaf=min_leaf)


def batch_fft_apply(X: np.ndarray) -> np.ndarray:
    """Reference batched FFT of a 2-D array of rows."""
    X = np.asarray(X, dtype=np.complex128)
    if X.ndim != 2:
        raise SPLError(f"expected a 2-D (batch, n) array, got {X.ndim}-D")
    b, n = X.shape
    return batch_fft_formula(b, n).apply(X.reshape(-1)).reshape(b, n)
