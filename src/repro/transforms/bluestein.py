"""Bluestein's algorithm: DFTs of *arbitrary* size on generated FFTs.

The Cooley-Tukey machinery needs composite sizes; Bluestein's chirp-z trick
reduces any ``DFT_n`` (prime sizes included) to a circular convolution of
length ``m >= 2n - 1`` (a power of two here), which runs on the generated,
optionally multithreaded, power-of-two FFTs:

    DFT_n x = conj(chirp) * IFFT_m( FFT_m(chirp*x padded) * FFT_m(kernel) )

This extends the library to every size while exercising the generator's
main path.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..codegen.python_backend import GeneratedProgram
from ..frontend import generate_fft
from ..spl.expr import COMPLEX
from .convolution import inverse_from_forward


def _next_pow2(v: int) -> int:
    n = 1
    while n < v:
        n *= 2
    return n


class BluesteinDFT:
    """Arbitrary-size DFT engine over generated power-of-two FFTs.

    Plans once per size; ``__call__`` computes ``numpy.fft.fft``-compatible
    transforms of length ``n`` for any ``n >= 1``.
    """

    def __init__(
        self,
        n: int,
        threads: int = 1,
        mu: int = 4,
        fft_program: Optional[GeneratedProgram] = None,
    ):
        if n < 1:
            raise ValueError(f"size must be >= 1, got {n}")
        self.n = n
        self.m = _next_pow2(2 * n - 1)
        self.fft = fft_program or generate_fft(self.m, threads=threads, mu=mu)
        if self.fft.size != self.m:
            raise ValueError(
                f"fft program has size {self.fft.size}, need {self.m}"
            )
        self.ifft = inverse_from_forward(self.fft, self.m)
        k = np.arange(n)
        # chirp: w^(k^2/2) with w = exp(-pi i / n); k^2 mod 2n keeps phases exact
        self.chirp = np.exp(-1j * np.pi * ((k * k) % (2 * n)) / n).astype(COMPLEX)
        kernel = np.zeros(self.m, dtype=COMPLEX)
        kernel[:n] = np.conj(self.chirp)
        kernel[self.m - n + 1 :] = np.conj(self.chirp[1:][::-1])
        self.kernel_spectrum = self.fft(kernel)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=COMPLEX)
        if x.shape != (self.n,):
            raise ValueError(f"expected shape ({self.n},), got {x.shape}")
        a = np.zeros(self.m, dtype=COMPLEX)
        a[: self.n] = x * self.chirp
        conv = self.ifft(self.fft(a) * self.kernel_spectrum)
        return self.chirp * conv[: self.n]


def dft_any_size(x: np.ndarray, threads: int = 1) -> np.ndarray:
    """One-shot arbitrary-size DFT (plans a Bluestein engine internally)."""
    x = np.asarray(x, dtype=COMPLEX)
    return BluesteinDFT(x.size, threads=threads)(x)
