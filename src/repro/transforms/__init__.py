"""Further transforms and applications built on the generator."""

from .batch import batch_fft_apply, batch_fft_formula, parallel_batch_fft
from .bluestein import BluesteinDFT, dft_any_size
from .convolution import FFTConvolver, inverse_from_forward, linear_convolve
from .idft import idft_apply, idft_formula, parallel_idft, reversal_perm
from .dft2d import dft2d_apply, dft2d_formula, parallel_dft2d
from .wht import (
    RULE_WHT_BASE,
    RULE_WHT_BREAKDOWN,
    WHT,
    expand_wht,
    parallel_wht,
    wht_step,
)

__all__ = [
    "BluesteinDFT",
    "FFTConvolver",
    "batch_fft_apply",
    "batch_fft_formula",
    "dft_any_size",
    "idft_apply",
    "idft_formula",
    "parallel_batch_fft",
    "parallel_idft",
    "reversal_perm",
    "RULE_WHT_BASE",
    "RULE_WHT_BREAKDOWN",
    "WHT",
    "dft2d_apply",
    "dft2d_formula",
    "expand_wht",
    "inverse_from_forward",
    "linear_convolve",
    "parallel_dft2d",
    "parallel_wht",
    "wht_step",
]
