"""Multi-dimensional DFTs: tensor products of one-dimensional ones.

Paper Section 2.2: "The SPL framework can be used to express a large class
of linear transforms ... including multi-dimensional transforms, which are
just tensor products of their one-dimensional counterparts."  For a
row-major ``m x n`` image ``X``,

    DFT2D_{m,n} vec(X) = (DFT_m (x) DFT_n) vec(X) = vec(DFT_m X DFT_n^T)

so the 2-D transform drops straight into the existing machinery: the tensor
split of the normalizer turns it into a row pass and a column pass, and the
Table 1 rules parallelize both.
"""

from __future__ import annotations

import numpy as np

from ..rewrite.derive import parallelize
from ..rewrite.breakdown import expand_dft
from ..spl.expr import Expr, SPLError, Tensor
from ..spl.matrices import DFT


def dft2d_formula(m: int, n: int) -> Expr:
    """The 2-D DFT as an SPL formula (row-major vectorized input)."""
    return Tensor(DFT(m), DFT(n))


def dft2d_apply(X: np.ndarray) -> np.ndarray:
    """Reference 2-D DFT of a 2-D array (matches ``numpy.fft.fft2``)."""
    X = np.asarray(X, dtype=np.complex128)
    if X.ndim != 2:
        raise SPLError(f"dft2d_apply expects a 2-D array, got {X.ndim}-D")
    m, n = X.shape
    return dft2d_formula(m, n).apply(X.reshape(-1)).reshape(m, n)


def parallel_dft2d(
    m: int, n: int, p: int, mu: int, min_leaf: int = 32
) -> Expr:
    """A fully optimized shared-memory 2-D DFT via the Table 1 rules.

    The tensor product ``DFT_m (x) DFT_n`` is split into
    ``(DFT_m (x) I_n)(I_m (x) DFT_n)``; rule (7) tiles the strided row pass
    and rule (9) chunks the column pass, exactly as for the 1-D factors of
    Eq. (14).  Preconditions: ``p*mu | m`` and ``p*mu | n``.
    """
    if m % (p * mu) or n % (p * mu):
        raise SPLError(
            f"parallel 2-D DFT requires p*mu | m and p*mu | n; "
            f"got m={m}, n={n}, p={p}, mu={mu}"
        )
    from ..sigma.normalize import normalize_for_lowering

    split = normalize_for_lowering(dft2d_formula(m, n))
    f = parallelize(split, p, mu)
    return expand_dft(f, "balanced", min_leaf=min_leaf)
