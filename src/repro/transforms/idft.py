"""The inverse DFT as an SPL formula.

``DFT_n^{-1} = (1/n) DFT_n R_n`` where ``R_n`` is the index-reversal
permutation ``x[k] -> x[(-k) mod n]`` — a pure matrix identity, so the
inverse transform flows through the same breakdown, parallelization, and
code generation as the forward one (no conjugation tricks needed at the
formula level).
"""

from __future__ import annotations

import numpy as np

from ..rewrite.breakdown import expand_dft
from ..rewrite.derive import derive_multicore_ct
from ..spl.expr import COMPLEX, Compose, Expr
from ..spl.matrices import DFT, Diag, Perm


def reversal_perm(n: int) -> Perm:
    """The index-reversal permutation ``y[k] = x[(-k) mod n]``.

    As a destination table: source ``k`` goes to ``(-k) mod n``.
    """
    k = np.arange(n)
    return Perm((-k) % n)


def idft_formula(n: int) -> Expr:
    """``IDFT_n = diag(1/n) . DFT_n . R_n`` (exact matrix identity)."""
    scale = Diag(np.full(n, 1.0 / n, dtype=COMPLEX))
    return Compose(scale, DFT(n), reversal_perm(n))


def idft_apply(X: np.ndarray) -> np.ndarray:
    """Reference inverse DFT (matches ``numpy.fft.ifft``)."""
    X = np.asarray(X, dtype=COMPLEX)
    return idft_formula(X.shape[-1]).apply(X)


def parallel_idft(n: int, p: int, mu: int, min_leaf: int = 32) -> Expr:
    """Shared-memory inverse DFT built around the multicore CT core.

    The reversal permutation merges into the *gathers* of the first compute
    stage and the 1/n scaling into the *post-scales* of the last one during
    lowering, so neither adds a pass or a write-side sharing hazard (the
    coherence analyzer confirms zero false sharing; the structural
    Definition 1 checker applies to the compute core, since ``R_n`` is not
    itself a cache-line-granular move).
    """
    core = expand_dft(
        derive_multicore_ct(n, p, mu), "balanced", min_leaf=min_leaf
    )
    scale = Diag(np.full(n, 1.0 / n, dtype=COMPLEX))
    return Compose(scale, core, reversal_perm(n))
