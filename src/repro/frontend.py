"""Top-level Spiral-SMP pipeline: transform spec -> optimized program.

Mirrors the architecture of Figure 1 in the paper:

1. *Formula generation* — Cooley-Tukey breakdown with an admissible top
   split, tagged ``smp(p, mu)`` and rewritten by Table 1 into the multicore
   Cooley-Tukey FFT (Eq. 14);
2. *Formula optimization* — Sigma-SPL loop merging (permutations and
   twiddles folded into loop index functions);
3. *Implementation* — Python/NumPy or multithreaded C code generation;
4. *Evaluation* — the machine cost model or measured runtime;
5. *Search* — thread-count/radix selection by feedback (see
   :mod:`repro.search` for factorization-tree search).

``generate_fft`` is the one-call convenience API; :class:`SpiralSMP` is the
stateful planner used by benchmarks.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

from .codegen.flags import simd_disabled
from .codegen.python_backend import GeneratedProgram, generate
from .machine.cost_model import CostBreakdown, SyncProfile, estimate_cost
from .machine.topology import MachineSpec
from .rewrite.breakdown import expand_dft
from .rewrite.derive import derive_multicore_ct, derive_sequential_ct
from .sigma.loops import SigmaProgram
from .sigma.lower import lower
from .spl.expr import Expr, SPLError
from .trace import get_tracer


def feasible_threads(n: int, p: int, mu: int) -> int:
    """Largest thread count t <= p with an admissible Eq. (14): (t*mu)^2 | n.

    Every candidate from ``p`` down to 2 is tried: a halving descent would
    skip feasible counts for non-power-of-two ``p`` (e.g. ``p=6`` would test
    6 and 3 but never 2).
    """
    for t in range(p, 1, -1):
        if n % ((t * mu) * (t * mu)) == 0:
            return t
    return 1


_VEC_WARNED = False


def _warn_vector_fallback(n: int, threads: int, nu: int, why: str) -> None:
    """Warn (once per process) that a ν-way plan degraded to scalar."""
    global _VEC_WARNED
    if not _VEC_WARNED:
        _VEC_WARNED = True
        warnings.warn(
            f"vec({nu}) rewriting of DFT_{n} (threads={threads}) failed "
            f"({why}); generating the scalar plan instead",
            RuntimeWarning,
            stacklevel=4,
        )


def vectorize_formula(f: Expr, n: int, threads: int, nu: int) -> tuple[Expr, int]:
    """Apply ``vec(ν)`` rewriting to an expanded formula, or degrade.

    Returns ``(formula, effective_nu)``.  Mirrors the backend registry's
    :func:`~repro.codegen.registry.resolve_backend` seam: a formula the
    vec rules cannot fully discharge (ν ∤ µ LinePerms, bare small-DFT
    leaves, odd shapes) degrades to the scalar formula with a
    ``vector.fallback`` trace counter and a once-per-process warning —
    plan building never fails because a ν was requested.  ``REPRO_NO_SIMD``
    forces scalar plans outright (counted as ``vector.no_simd``).
    """
    from .vector import vectorize, vectorize_smp

    if nu <= 1:
        return f, 1
    tr = get_tracer()
    if simd_disabled():
        tr.count("vector.no_simd", 1)
        return f, 1
    try:
        with tr.span("frontend.vectorize", "rewrite", nu=nu):
            v = vectorize_smp(f, nu) if threads > 1 else vectorize(f, nu)
        return v, nu
    except SPLError as exc:  # includes VectorizationError
        tr.count("vector.fallback", 1, nu=nu)
        _warn_vector_fallback(n, threads, nu, str(exc)[:120])
        return f, 1


def spiral_formula(n: int, threads: int, mu: int, strategy: str = "balanced",
                   min_leaf: int = 32, nu: int = 1) -> Expr:
    """Fully expanded formula for ``DFT_n`` on ``threads`` processors.

    ``nu > 1`` additionally applies the short-vector ``vec(ν)`` rewriting
    (:mod:`repro.vector`) so every compute stage carries ν-lane vector
    constructs; inadmissible combinations degrade to the scalar formula
    (see :func:`vectorize_formula`).
    """
    tr = get_tracer()
    with tr.span("frontend.derive", "rewrite", n=n, threads=threads, mu=mu):
        if threads > 1:
            f = derive_multicore_ct(n, threads, mu)
        else:
            f = derive_sequential_ct(n)
    with tr.span("frontend.expand", "rewrite", strategy=strategy):
        f = expand_dft(f, strategy, min_leaf=min_leaf)
    f, _ = vectorize_formula(f, n, threads, nu)
    return f


def generate_fft(
    n: int,
    threads: int = 1,
    mu: int = 4,
    strategy: str = "balanced",
    min_leaf: int = 32,
    nu: int = 1,
) -> GeneratedProgram:
    """Generate an executable FFT program (the quickstart entry point).

    Returns a :class:`GeneratedProgram`; call it on a length-``n`` complex
    vector, or pass a :class:`repro.smp.PThreadsRuntime` to ``run`` for
    multithreaded execution.

    ``nu`` selects the vector granularity: ``nu > 1`` runs the ``vec(ν)``
    rewriting so the lowered loops carry ν-lane blocks the compiled
    backend widens into SIMD-shaped C (interpreted backends execute them
    identically).  Inadmissible (n, threads, µ, ν) combinations fall back
    to the scalar plan instead of erroring.

    Under an active :mod:`repro.trace` tracer the whole pipeline is recorded
    as a ``generate_fft`` span with derivation, lowering, and codegen child
    spans (see ``docs/profiling.md``).
    """
    tr = get_tracer()
    with tr.span("generate_fft", "frontend", n=n, threads=threads, mu=mu,
                 nu=nu):
        f = spiral_formula(n, threads, mu, strategy, min_leaf, nu=nu)
        # mu-aware elision: unsynchronized chains must be line-disjoint,
        # not just element-disjoint (certified by `repro check`)
        return generate(lower(f, barrier_mu=mu))


@dataclass
class TransformPlan:
    """A planned transform: formula, loops, and modeled cost."""

    n: int
    threads: int
    program: SigmaProgram
    cost: CostBreakdown
    profile: SyncProfile

    def pseudo_mflops(self, spec: MachineSpec) -> float:
        return self.cost.pseudo_mflops(spec)


class SpiralSMP:
    """Spiral-with-shared-memory-extension planner on a simulated machine."""

    def __init__(
        self,
        spec: MachineSpec,
        min_leaf: int = 32,
        strategy: str = "balanced",
    ):
        self.spec = spec
        self.min_leaf = min_leaf
        self.strategy = strategy
        self._programs: dict[tuple[int, int], SigmaProgram] = {}

    def program(self, n: int, threads: int) -> SigmaProgram:
        """Lowered (merged, mu-aware) program for ``n`` on ``threads`` cores."""
        key = (n, threads)
        if key not in self._programs:
            f = spiral_formula(
                n, threads, self.spec.mu, self.strategy, self.min_leaf
            )
            self._programs[key] = lower(f, barrier_mu=self.spec.mu)
        return self._programs[key]

    def cost(
        self,
        n: int,
        threads: int,
        profile: SyncProfile = SyncProfile.POOLED,
    ) -> CostBreakdown:
        t = feasible_threads(n, threads, self.spec.mu) if threads > 1 else 1
        prog = self.program(n, t)
        return estimate_cost(
            prog,
            self.spec,
            threads=t,
            profile=profile if t > 1 else SyncProfile.NONE,
        )

    def plan(
        self,
        n: int,
        threads: int,
        profile: SyncProfile = SyncProfile.POOLED,
    ) -> TransformPlan:
        t = feasible_threads(n, threads, self.spec.mu) if threads > 1 else 1
        prog = self.program(n, t)
        cost = estimate_cost(
            prog,
            self.spec,
            threads=t,
            profile=profile if t > 1 else SyncProfile.NONE,
        )
        return TransformPlan(n, t, prog, cost, profile)

    def pseudo_mflops(
        self, n: int, threads: int, profile: SyncProfile = SyncProfile.POOLED
    ) -> float:
        return self.cost(n, threads, profile).pseudo_mflops(self.spec)

    def clear_cache(self) -> None:
        self._programs.clear()


def verify_program(gen: GeneratedProgram, rng=None, atol: float = 1e-6) -> bool:
    """Quick numerical check of a generated program against numpy.fft."""
    rng = rng or np.random.default_rng(0)
    x = rng.standard_normal(gen.size) + 1j * rng.standard_normal(gen.size)
    return bool(np.allclose(gen.run(x), np.fft.fft(x), atol=atol))
