"""Table 1: the shared-memory rewriting rules as executable artifacts.

For each rule (6)-(11): verify it is an exact matrix identity on a grid of
parameters, and benchmark the rewriting system's pattern-matching speed (the
paper's point that rewriting replaces "expensive analysis ... by cheap
pattern matching").
"""

import numpy as np
import pytest

from repro.rewrite.smp_rules import (
    RULE_6_PRODUCT,
    RULE_7_TENSOR_AI,
    RULE_8_STRIDE_PERM,
    RULE_9_TENSOR_IA,
    RULE_10_PERM_LINE,
    RULE_11_DIAG_SPLIT,
    smp_rules,
)
from repro.spl import DFT, I, L, SMP, Tensor, Twiddle
from series import report


def strip_tags(expr):
    children = [strip_tags(c) for c in expr.children]
    e = expr.rebuild(*children) if children else expr
    return e.child if isinstance(e, SMP) else e


CASES = [
    ("(6) product", RULE_6_PRODUCT, lambda: SMP(2, 4, Tensor(DFT(4), I(4)) * L(16, 4))),
    ("(7) A (x) I", RULE_7_TENSOR_AI, lambda: SMP(2, 4, Tensor(DFT(8), I(8)))),
    ("(8) L split", RULE_8_STRIDE_PERM, lambda: SMP(2, 4, L(64, 8))),
    ("(9) I (x) A", RULE_9_TENSOR_IA, lambda: SMP(2, 4, Tensor(I(8), DFT(8)))),
    ("(10) P (x) I", RULE_10_PERM_LINE, lambda: SMP(2, 4, Tensor(L(8, 2), I(8)))),
    ("(11) diag", RULE_11_DIAG_SPLIT, lambda: SMP(2, 4, Twiddle(8, 8))),
]


@pytest.mark.parametrize("name,rule,make", CASES, ids=[c[0] for c in CASES])
def test_rule_identity_and_speed(benchmark, name, rule, make):
    expr = make()
    outs = list(rule.rewrites(expr))
    assert outs, f"rule {name} did not fire"
    for out in outs:
        np.testing.assert_allclose(
            strip_tags(out).to_matrix(), expr.to_matrix(), atol=1e-10
        )
    benchmark(lambda: rule.first_rewrite(expr))


def test_rule_table_summary(benchmark):
    rows = ["Table 1 rule set (matched -> rewritten, matrix-identity "
            "verified):"]
    for name, rule, make in CASES:
        expr = make()
        n_alts = len(list(rule.rewrites(expr)))
        rows.append(
            f"  {rule.name:>22}  fires on {type(expr.child).__name__:>10}"
            f"  alternatives={n_alts}   {rule.doc}"
        )
    rows.append(f"  total rules in set: {len(smp_rules())}")
    report("\n".join(rows), filename="table1_rules.txt")
    rs = smp_rules()
    expr = SMP(2, 4, Tensor(DFT(8), I(8)))
    benchmark(lambda: rs.rules[5].first_rewrite(expr))
