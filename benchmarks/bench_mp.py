"""R2: measured multiprocess speedup (`repro.mp.ProcessPoolRuntime`).

The only benchmark in the suite whose headline number depends on the host:
on a single-core container the parallel run cannot beat sequential (two
processes time-slice one core and pay barrier costs on top), so the
assertions here check *correct accounting*, not speedup.  The speedup
claim itself (>= 1.3x at p=2, n >= 2^14) is demonstrated on the CI `mp`
job's multi-core runner, which runs ``repro bench --runtime process`` and
uploads ``BENCH_mp.json``; see ``docs/parallel.md``.
"""

import numpy as np

from repro.mp import PlanSpec, ProcessPoolRuntime, render_mp_bench, run_mp_bench
from series import report


def test_mp_speedup_sweep(benchmark):
    result = run_mp_bench(kmin=8, kmax=11, threads=2, batch=4, repeats=3)

    # accounting invariants that hold on any host
    assert result["benchmark"] == "mp_speedup"
    assert result["host"]["cpu_count"] >= 1
    assert len(result["rows"]) == 4
    for row in result["rows"]:
        assert row["seq_s"] > 0 and row["par_s"] > 0
        assert row["speedup"] == row["seq_s"] / row["par_s"]
        assert row["threads_used"] == 2
    # the honest headline: speedup needs cores; one core cannot show it
    if result["host"]["cpu_count"] >= 2:
        assert result["best_speedup"] > 0.8

    report(render_mp_bench(result), filename="mp_speedup.txt")

    # one pytest-benchmark series: the parallel pool on the largest size
    rng = np.random.default_rng(0)
    n = 2**11
    spec = PlanSpec.for_request(n, threads=2)
    X = rng.standard_normal((4, n)) + 1j * rng.standard_normal((4, n))
    with ProcessPoolRuntime(2) as pool:
        pool.execute_spec(spec, X)  # warm: compile + map buffers
        Y, _ = benchmark(pool.execute_spec, spec, X)
    np.testing.assert_allclose(Y, np.fft.fft(X, axis=-1), atol=1e-8)
