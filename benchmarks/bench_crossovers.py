"""Claims C1/C2: parallelization crossover sizes (paper Section 4).

C1 (two-processor machines): Spiral-generated code gains from the second
processor already at N = 2^8 — a problem that fits in L1 and runs in fewer
than 10,000 cycles — while FFTW only gains for N > 2^13 (> 500,000 cycles).

C2 (four-processor machines): Spiral uses all processors from N = 2^9;
FFTW's model only chooses 4 threads at much larger sizes.
"""

from series import compute_point, crossover, machine_series, report

import pytest


def _spiral_crossover(series):
    return crossover(series["spiral_pthreads"], series["spiral_seq"])


def _fftw_crossover(series):
    return min(
        (k for k, t in series["fftw_threads_used"].items() if t > 1),
        default=None,
    )


def _fftw_4t(series):
    return min(
        (k for k, t in series["fftw_threads_used"].items() if t >= 4),
        default=None,
    )


def test_crossover_table(benchmark):
    rows = [
        "Claims C1/C2: parallelization crossovers (log2 of first size "
        "where parallel wins)",
        f"{'machine':>10} | {'Spiral':>7} {'FFTW-mt':>8} {'FFTW-4t':>8} | "
        "paper: Spiral 2^8 (2^9 on 4 procs), FFTW >2^13, FFTW-4t 2^20",
    ]
    data = {}
    for name in ("core_duo", "pentium_d", "opteron", "xeon_mp"):
        series = machine_series(name)
        ks = _spiral_crossover(series)
        kf = _fftw_crossover(series)
        k4 = _fftw_4t(series)
        data[name] = (ks, kf, k4)
        rows.append(
            f"{name:>10} | {str(ks):>7} {str(kf):>8} {str(k4):>8} |"
        )
    report("\n".join(rows), filename="crossovers.txt")
    benchmark(compute_point, "core_duo", 8)

    # C1: Spiral crossover at/near 2^8 on the CMPs, always before FFTW
    assert data["core_duo"][0] <= 9
    assert data["opteron"][0] <= 9
    for name, (ks, kf, _) in data.items():
        assert ks is not None and kf is not None
        assert ks < kf, f"{name}: Spiral must parallelize earlier than FFTW"
    # C1: FFTW needs thousands of points (paper: beyond 2^13 on Core Duo)
    assert data["core_duo"][1] >= 12
    # C2: on 4-proc machines FFTW reaches 4 threads only at large sizes
    for name in ("opteron", "xeon_mp"):
        k4 = data[name][2]
        assert k4 is None or k4 >= 15


def test_spiral_crossover_is_in_l1_and_under_10k_cycles(benchmark):
    """The headline sentence of the abstract, verified end to end."""
    series = machine_series("core_duo")
    k = _spiral_crossover(series)
    point = compute_point("core_duo", k)
    l1_bytes = 32 * 1024
    assert (1 << k) * 16 <= l1_bytes  # input fits in L1
    assert point["spiral_cycles_seq"] < 10_000
    report(
        f"C1 detail: Spiral parallel speedup at N = 2^{k} "
        f"({point['spiral_cycles_seq']:.0f} sequential cycles, "
        f"{point['spiral_cycles_pthreads']:.0f} parallel cycles) — "
        "matches 'a problem size as small as 2^8 ... less than 10,000 "
        "cycles' (paper Section 1).",
        filename="crossover_c1_detail.txt",
    )
    benchmark(compute_point, "core_duo", k)


def test_fftw_crossover_cycles_scale(benchmark):
    """FFTW's first multithreaded size runs at hundreds of thousands of
    cycles (paper: more than 500,000)."""
    series = machine_series("core_duo")
    kf = _fftw_crossover(series)
    seq_cycles = compute_point("core_duo", kf)["spiral_cycles_seq"]
    assert seq_cycles > 100_000
    benchmark(compute_point, "core_duo", 11)
