"""Shared series builder for the Figure 3 / claims benchmarks.

Produces, for each simulated machine and problem size 2^6..2^KMAX, the five
series of the paper's Figure 3 (pseudo Mflop/s):

* Spiral pthreads (pooled barriers, Eq. 14 schedules)
* Spiral OpenMP  (fork-join per stage)
* Spiral sequential
* FFTW pthreads  (the model planner's best multithreaded configuration)
* FFTW sequential

Results are cached on disk (``benchmarks/results/series_cache.json``) because
a full sweep to 2^20 lowers multi-megapoint programs.  Set
``REPRO_BENCH_MAX_K`` (default 18, paper: 20) to change the sweep range, and
delete the cache file after changing model constants.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

from repro.baselines import FFTWModel
from repro.frontend import SpiralSMP, feasible_threads
from repro.machine import (
    PAPER_MACHINES,
    SyncProfile,
    estimate_cost,
    machine,
    sync_cycles,
)

KMIN = 6
KMAX = int(os.environ.get("REPRO_BENCH_MAX_K", "18"))

RESULTS_DIR = Path(__file__).parent / "results"
CACHE_FILE = RESULTS_DIR / "series_cache.json"

SERIES_NAMES = [
    "spiral_pthreads",
    "spiral_openmp",
    "spiral_seq",
    "fftw_pthreads",
    "fftw_seq",
]


def _load_cache() -> dict:
    if CACHE_FILE.exists():
        try:
            return json.loads(CACHE_FILE.read_text())
        except (json.JSONDecodeError, OSError):
            return {}
    return {}


def _store_cache(cache: dict) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    CACHE_FILE.write_text(json.dumps(cache, indent=1, sort_keys=True))


def compute_point(machine_name: str, k: int) -> dict:
    """All series values at one (machine, size) point."""
    spec = machine(machine_name)
    spiral = SpiralSMP(spec)
    fftw = FFTWModel(spec)
    n = 1 << k
    plan = fftw.plan(n)
    seq_cost = spiral.cost(n, 1)
    t = feasible_threads(n, spec.p, spec.mu)
    if t > 1:
        prog = spiral.program(n, t)
        pth_cost = estimate_cost(prog, spec, t, SyncProfile.POOLED)
        omp_cost = pth_cost.with_sync(
            sync_cycles(prog, spec, t, SyncProfile.FORK_JOIN)
        )
    else:
        pth_cost = omp_cost = seq_cost
    return {
        "spiral_pthreads": pth_cost.pseudo_mflops(spec),
        "spiral_openmp": omp_cost.pseudo_mflops(spec),
        "spiral_seq": seq_cost.pseudo_mflops(spec),
        "fftw_pthreads": plan.pseudo_mflops(spec),
        "fftw_seq": fftw.cost_sequential(n).pseudo_mflops(spec),
        "fftw_threads_used": plan.threads,
        "fftw_schedule": plan.schedule or "none",
        "spiral_threads_used": t,
        "spiral_cycles_pthreads": pth_cost.total_cycles,
        "spiral_cycles_seq": seq_cost.total_cycles,
    }


def get_point(machine_name: str, k: int, cache: dict | None = None) -> dict:
    """Cached point lookup."""
    own_cache = cache is None
    cache = cache if cache is not None else _load_cache()
    key = f"{machine_name}:{k}"
    if key not in cache:
        cache[key] = compute_point(machine_name, k)
        if own_cache:
            _store_cache(cache)
    return cache[key]


def machine_series(machine_name: str, kmax: int = KMAX) -> dict:
    """Full sweep for one machine; returns {series_name: {k: value}}."""
    cache = _load_cache()
    out: dict = {name: {} for name in SERIES_NAMES}
    out["fftw_threads_used"] = {}
    out["spiral_threads_used"] = {}
    dirty = False
    for k in range(KMIN, kmax + 1):
        key = f"{machine_name}:{k}"
        if key not in cache:
            cache[key] = compute_point(machine_name, k)
            dirty = True
        point = cache[key]
        for name in SERIES_NAMES + ["fftw_threads_used", "spiral_threads_used"]:
            out[name][k] = point[name]
    if dirty:
        _store_cache(cache)
    return out


def format_series_table(machine_name: str, series: dict, kmax: int = KMAX) -> str:
    """Render a Figure 3 panel as the paper's rows (pseudo Mflop/s)."""
    lines = [
        f"Figure 3 panel: {machine(machine_name).name}",
        f"{'log2 n':>6} | {'Spiral pthr':>11} {'Spiral OMP':>11} "
        f"{'Spiral seq':>11} | {'FFTW pthr':>11} {'FFTW seq':>9} | "
        f"{'FFTW thr':>8}",
    ]
    lines.append("-" * len(lines[1]))
    for k in range(KMIN, kmax + 1):
        lines.append(
            f"{k:>6} | {series['spiral_pthreads'][k]:>11.0f} "
            f"{series['spiral_openmp'][k]:>11.0f} "
            f"{series['spiral_seq'][k]:>11.0f} | "
            f"{series['fftw_pthreads'][k]:>11.0f} "
            f"{series['fftw_seq'][k]:>9.0f} | "
            f"{series['fftw_threads_used'][k]:>8}"
        )
    return "\n".join(lines)


def write_csv(machine_name: str, series: dict, kmax: int = KMAX) -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"figure3_{machine_name}.csv"
    cols = SERIES_NAMES + ["fftw_threads_used", "spiral_threads_used"]
    with path.open("w") as fh:
        fh.write("log2n," + ",".join(cols) + "\n")
        for k in range(KMIN, kmax + 1):
            fh.write(
                f"{k},"
                + ",".join(str(series[c][k]) for c in cols)
                + "\n"
            )
    return path


def crossover(series_a: dict, series_b: dict, kmax: int = KMAX):
    """First k where series_a beats series_b (None if never)."""
    for k in range(KMIN, kmax + 1):
        if series_a[k] > series_b[k]:
            return k
    return None


def all_machines(kmax: int = KMAX) -> dict:
    return {name: machine_series(name, kmax) for name in PAPER_MACHINES}


def report(text: str, filename: str | None = None) -> None:
    """Emit a result table to the real stdout (past pytest capture) and,
    optionally, to ``benchmarks/results/<filename>``."""
    print("\n" + text, file=sys.__stdout__, flush=True)
    if filename:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / filename).write_text(text + "\n")
