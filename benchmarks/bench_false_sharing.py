"""Property P1: Spiral's schedules are free of false sharing (Definition 1).

The paper *proves* this structurally; here it is verified *empirically* by
the coherence simulator on the lowered index tables, and contrasted with the
mu-oblivious block/cyclic schedules of traditional loop parallelization.
"""

import pytest

from repro.frontend import SpiralSMP, feasible_threads
from repro.machine import (
    analyze_sharing,
    core_duo,
    count_false_sharing,
    schedule_block,
    schedule_cyclic,
)
from repro.rewrite import derive_sequential_ct, expand_dft
from repro.sigma import lower
from series import report

MU = 4
SIZES = [256, 1024, 4096, 16384]


def _seq_program(n):
    return lower(expand_dft(derive_sequential_ct(n), "balanced", min_leaf=32))


def test_false_sharing_table(benchmark):
    spec = core_duo()
    spiral = SpiralSMP(spec)
    rows = [
        "P1: falsely shared cache lines per transform (mu = 4)",
        f"{'n':>7} | {'Spiral(2)':>9} {'Spiral(4)':>9} "
        f"{'cyclic(2)':>9} {'cyclic(4)':>9} {'block(2)':>9}",
    ]
    for n in SIZES:
        seq = _seq_program(n)
        sp2 = count_false_sharing(spiral.program(n, 2), MU)
        t4 = feasible_threads(n, 4, MU)
        sp4 = (
            count_false_sharing(spiral.program(n, 4), MU) if t4 == 4 else "-"
        )
        cy2 = count_false_sharing(schedule_cyclic(seq, 2), MU)
        cy4 = count_false_sharing(schedule_cyclic(seq, 4), MU)
        bl2 = count_false_sharing(schedule_block(seq, 2), MU)
        rows.append(
            f"{n:>7} | {sp2:>9} {str(sp4):>9} {cy2:>9} {cy4:>9} {bl2:>9}"
        )
        assert sp2 == 0
        if t4 == 4:
            assert sp4 == 0
        assert cy2 > 0
    report("\n".join(rows), filename="false_sharing.txt")
    benchmark(count_false_sharing, spiral.program(1024, 2), MU)


def test_definition1_and_simulator_agree(benchmark):
    """The structural proof (Definition 1 checker) and the empirical
    coherence analysis agree on every Spiral schedule."""
    from repro.frontend import spiral_formula
    from repro.spl import is_fully_optimized

    spec = core_duo()
    spiral = SpiralSMP(spec)
    for n in SIZES:
        formula = spiral_formula(n, 2, MU)
        prog = spiral.program(n, 2)
        structural = is_fully_optimized(formula, 2, MU)
        empirical = count_false_sharing(prog, MU) == 0
        assert structural and empirical
    benchmark(is_fully_optimized, spiral_formula(1024, 2, MU), 2, MU)


def test_communication_is_transpose_only(benchmark):
    """True-sharing transfers concentrate in the stages that implement the
    stride permutations (the FFT's unavoidable all-to-all)."""
    spec = core_duo()
    spiral = SpiralSMP(spec)
    prog = spiral.program(4096, 2)
    rep = analyze_sharing(prog, MU)
    per_stage = [sum(s.coherence_misses.values()) for s in rep.stages]
    assert sum(per_stage) > 0
    # not every stage communicates: chunk-local stages transfer nothing
    assert min(per_stage) == 0 or per_stage.count(0) >= 0
    communicating = [c for c in per_stage if c > 0]
    assert len(communicating) < len(per_stage)
    benchmark(analyze_sharing, prog, MU)
