"""Extension bench: generality of the Table 1 rules beyond the 1-D DFT.

The paper positions Spiral as a generator for *linear transforms* and notes
multi-dimensional transforms are tensor products (Section 2.2).  This bench
pushes the WHT and the 2-D DFT through the identical smp(p, mu) rewriting
and reports the same properties as for the DFT: Definition 1, zero false
sharing, modeled parallel speedup.
"""

import numpy as np

from repro.machine import SyncProfile, core_duo, count_false_sharing, estimate_cost
from repro.sigma import lower
from repro.spl import is_fully_optimized
from repro.transforms import WHT, parallel_dft2d, parallel_wht
from series import report


def test_wht_through_table1(benchmark):
    spec = core_duo()
    rows = [
        "Generality: parallel WHT via the identical Table 1 rules "
        "(Core Duo, p=2, mu=4)",
        f"{'n':>6} | {'Def.1':>5} {'false-shared':>12} {'seq cycles':>11} "
        f"{'par cycles':>11} {'speedup':>7}",
    ]
    for n in (256, 1024, 4096):
        f = parallel_wht(n, 2, 4)
        prog = lower(f)
        fs = count_false_sharing(prog, 4)
        par = estimate_cost(prog, spec, 2, SyncProfile.POOLED).total_cycles
        from repro.transforms import expand_wht

        seq = estimate_cost(
            lower(expand_wht(n, min_leaf=32)), spec, 1, SyncProfile.NONE
        ).total_cycles
        rows.append(
            f"{n:>6} | {str(is_fully_optimized(f, 2, 4)):>5} {fs:>12} "
            f"{seq:>11.0f} {par:>11.0f} {seq / par:>6.2f}x"
        )
        assert is_fully_optimized(f, 2, 4)
        assert fs == 0
        x = np.random.default_rng(0).standard_normal(n) + 0j
        np.testing.assert_allclose(prog.apply(x), WHT(n).apply(x), atol=1e-7)
    report("\n".join(rows), filename="transforms_wht.txt")
    benchmark(parallel_wht, 1024, 2, 4)


def test_dft2d_through_table1(benchmark):
    spec = core_duo()
    rows = [
        "Generality: parallel 2-D DFT via the identical Table 1 rules",
        f"{'shape':>9} | {'Def.1':>5} {'false-shared':>12} {'speedup':>8}",
    ]
    for m, n in ((16, 16), (32, 32)):
        f = parallel_dft2d(m, n, 2, 4)
        prog = lower(f)
        fs = count_false_sharing(prog, 4)
        par = estimate_cost(prog, spec, 2, SyncProfile.POOLED).total_cycles
        seq_f = parallel_dft2d(m, n, 1, 1) if False else None
        from repro.transforms import dft2d_formula
        from repro.rewrite import expand_dft
        from repro.sigma import normalize_for_lowering

        seq_formula = expand_dft(
            normalize_for_lowering(dft2d_formula(m, n)), "balanced", min_leaf=32
        )
        seq = estimate_cost(
            lower(seq_formula), spec, 1, SyncProfile.NONE
        ).total_cycles
        rows.append(
            f"{f'{m}x{n}':>9} | {str(is_fully_optimized(f, 2, 4)):>5} "
            f"{fs:>12} {seq / par:>7.2f}x"
        )
        assert is_fully_optimized(f, 2, 4)
        assert fs == 0
        X = np.random.default_rng(1).standard_normal((m, n)) + 0j
        np.testing.assert_allclose(
            prog.apply(X.reshape(-1)).reshape(m, n), np.fft.fft2(X), atol=1e-6
        )
    report("\n".join(rows), filename="transforms_dft2d.txt")
    benchmark(parallel_dft2d, 16, 16, 2, 4)
