"""Claim C3: Spiral-generated sequential code within 10% of FFTW's.

Paper, Section 4 ("Results"): "Spiral-generated sequential code is within
10% of FFTW's performance."  Verified across the whole sweep on all four
machines.
"""

from series import KMIN, KMAX, compute_point, machine_series, report


def test_sequential_within_ten_percent(benchmark):
    rows = [
        "Claim C3: Spiral sequential vs FFTW sequential (ratio, pseudo "
        "Mflop/s based)",
        f"{'machine':>10} | {'min ratio':>9} {'max ratio':>9} | paper: "
        "within 10%",
    ]
    for name in ("core_duo", "pentium_d", "opteron", "xeon_mp"):
        series = machine_series(name)
        ratios = [
            series["spiral_seq"][k] / series["fftw_seq"][k]
            for k in range(KMIN, KMAX + 1)
        ]
        rows.append(
            f"{name:>10} | {min(ratios):>9.3f} {max(ratios):>9.3f} |"
        )
        assert min(ratios) >= 0.90, (name, min(ratios))
        assert max(ratios) <= 1.10, (name, max(ratios))
    report("\n".join(rows), filename="sequential_gap.txt")
    benchmark(compute_point, "core_duo", 12)


def test_sequential_shape_tracks_cache_hierarchy(benchmark):
    """Both sequential curves drop together when the working set leaves a
    cache level — the simulated substrate reproduces the physical dips."""
    series = machine_series("core_duo")
    seq = series["spiral_seq"]
    in_l1 = seq[10]
    in_l2 = seq[14]
    out = seq[KMAX]
    assert in_l1 > in_l2 > out
    benchmark(compute_point, "core_duo", 11)
