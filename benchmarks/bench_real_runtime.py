"""R1: honest wall-clock measurements on the host (single core).

The container has one CPU core, so these are *not* the paper's parallel
numbers (those come from the simulated machines); they establish that the
generated programs are real, runnable, and within a sane factor of library
FFTs — and that the generated C compiles and runs.
"""

import numpy as np
import pytest

from repro.baselines import fft_iterative
from repro.codegen import compile_and_run, compiler_available, generate_c
from repro.frontend import generate_fft
from repro.rewrite import derive_multicore_ct, expand_dft
from repro.search import pseudo_mflops_from_seconds, time_callable
from repro.sigma import lower
from series import report

SIZES = [256, 1024, 4096, 16384]


def test_generated_python_vs_references(benchmark):
    rng = np.random.default_rng(0)
    rows = [
        "R1: measured single-core wall-clock (pseudo Mflop/s; this host, "
        "Python backend)",
        f"{'n':>6} | {'generated':>10} {'numpy.fft':>10} "
        f"{'iterative radix-2':>17}",
    ]
    for n in SIZES:
        gen = generate_fft(n, min_leaf=32)
        t_gen = time_callable(gen.run, n, repeats=3, rng=rng)
        t_np = time_callable(lambda v: np.fft.fft(v), n, repeats=3, rng=rng)
        t_it = time_callable(fft_iterative, n, repeats=3, rng=rng)
        rows.append(
            f"{n:>6} | {pseudo_mflops_from_seconds(n, t_gen):>10.0f} "
            f"{pseudo_mflops_from_seconds(n, t_np):>10.0f} "
            f"{pseudo_mflops_from_seconds(n, t_it):>17.0f}"
        )
        # sanity: the generated program is within 1000x of numpy's C FFT
        assert t_gen < t_np * 1000
    report("\n".join(rows), filename="real_runtime_python.txt")

    gen = generate_fft(4096)
    x = (rng.standard_normal(4096) + 1j * rng.standard_normal(4096))
    result = benchmark(gen.run, x)
    np.testing.assert_allclose(result, np.fft.fft(x), atol=1e-6)


@pytest.mark.skipif(not compiler_available(), reason="no C compiler")
def test_generated_c_native_performance(benchmark):
    """Self-timing native builds of the generated C — the closest this host
    gets to the paper's actual experiment (single core, gcc -O2)."""
    from repro.codegen import compile_and_time
    from repro.rewrite import derive_sequential_ct

    rows = [
        "R1: native generated C, sequential, gcc -O2, best-of-200 "
        "(pseudo Mflop/s; paper's 2006 machines: ~2000-6000 with SSE2+icc)",
        f"{'n':>6} | {'dense us':>9} {'dense MF/s':>10} | "
        f"{'unrolled us':>11} {'unrolled MF/s':>13}",
    ]
    for n in (256, 1024, 4096, 16384):
        prog_seq = lower(
            expand_dft(derive_sequential_ct(n), "balanced", min_leaf=16)
        )
        t_dense = compile_and_time(prog_seq, "sequential", reps=200)
        t_unroll = compile_and_time(
            prog_seq, "sequential", reps=200, unroll_max=16
        )
        mf_d = pseudo_mflops_from_seconds(n, t_dense)
        mf_u = pseudo_mflops_from_seconds(n, t_unroll)
        rows.append(
            f"{n:>6} | {t_dense * 1e6:>9.1f} {mf_d:>10.0f} | "
            f"{t_unroll * 1e6:>11.1f} {mf_u:>13.0f}"
        )
        assert mf_d > 100  # a sane native FFT rate
        assert mf_u > mf_d * 0.8  # unrolled codelets should not regress
    report("\n".join(rows), filename="real_runtime_c_native.txt")
    prog = lower(
        expand_dft(derive_sequential_ct(1024), "balanced", min_leaf=16)
    )
    benchmark(compile_and_time, prog, "sequential", 5)


@pytest.mark.skipif(not compiler_available(), reason="no C compiler")
def test_generated_c_compiles_and_runs(benchmark):
    rng = np.random.default_rng(1)
    n = 1024
    f = expand_dft(derive_multicore_ct(n, 2, 4), "balanced", min_leaf=16)
    gen_c = generate_c(lower(f), mode="pthreads")
    x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
    out = compile_and_run(gen_c, x)
    np.testing.assert_allclose(out, np.fft.fft(x), atol=1e-6)
    report(
        f"R1: generated pthreads C for DFT_{n} compiled with gcc and "
        f"verified against numpy.fft "
        f"({len(gen_c.source.splitlines())} source lines, "
        f"{gen_c.nstages} stages).",
        filename="real_runtime_c.txt",
    )
    benchmark(lambda: generate_c(lower(f), mode="pthreads"))


def test_threaded_runtime_overhead_measured(benchmark):
    """Measure the actual Python pool-dispatch overhead per call."""
    from repro.smp import PThreadsRuntime, SequentialRuntime

    n = 256
    gen = generate_fft(n, threads=2)
    rng = np.random.default_rng(2)
    x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
    t_seq = time_callable(
        lambda v: gen.run(v, SequentialRuntime()), n, repeats=3, rng=rng
    )
    with PThreadsRuntime(2) as pool:
        gen.run(x, pool)
        t_par = time_callable(
            lambda v: gen.run(v, pool), n, repeats=3, rng=rng
        )
    report(
        "R1: Python threaded runtime at n=256 — sequential "
        f"{t_seq * 1e6:.0f} us vs pooled-threads {t_par * 1e6:.0f} us per "
        "call (GIL: no speedup expected on one core; correctness only).",
        filename="real_runtime_threads.txt",
    )
    benchmark(lambda: gen.run(x))
