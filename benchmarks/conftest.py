"""Benchmark-session plumbing: print every result table in the summary.

pytest captures stdout at the file-descriptor level, so tables printed
during passing tests never reach the terminal.  The canonical artifacts are
the files under ``benchmarks/results/``; this hook replays them into the
terminal summary so a ``pytest benchmarks/ --benchmark-only | tee`` run
contains every regenerated table and figure.
"""

from pathlib import Path

RESULTS = Path(__file__).parent / "results"


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not RESULTS.exists():
        return
    files = sorted(RESULTS.glob("*.txt"))
    if not files:
        return
    terminalreporter.write_line("")
    terminalreporter.write_sep("=", "regenerated tables & figures")
    for path in files:
        terminalreporter.write_line("")
        terminalreporter.write_sep("-", path.name)
        for line in path.read_text().splitlines():
            terminalreporter.write_line(line)
