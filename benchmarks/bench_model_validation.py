"""Model validation: trace-driven replay vs the analytic cost model.

The Figure 3 claims rest on the analytic model; this bench grounds it by
replaying real access streams through the set-associative cache simulator
and checking the model's residency/traffic assumptions at validation sizes.
"""

from repro.baselines import six_step_program
from repro.frontend import SpiralSMP
from repro.machine import (
    core_duo,
    pentium_d,
    replay,
    residency_agrees_with_model,
)
from series import report


def test_residency_validation(benchmark):
    spec = core_duo()
    spiral = SpiralSMP(spec)
    rows = [
        "Model validation: replayed L1 miss rate vs model residency class "
        "(Core Duo)",
        f"{'n':>6} {'threads':>7} | {'L1 miss rate':>12} "
        f"{'model class':>11} {'agree':>5}",
    ]
    for n, t in ((256, 1), (256, 2), (1024, 1), (4096, 1), (4096, 2), (8192, 1)):
        prog = spiral.program(n, t)
        r = replay(prog, spec, repeats=3)
        share = 2 * n * 16 / t
        cls = "L1" if share <= spec.l1.size_bytes else "L2+"
        agree = residency_agrees_with_model(prog, spec, t)
        rows.append(
            f"{n:>6} {t:>7} | {r.l1_miss_rate:>12.3f} {cls:>11} "
            f"{str(agree):>5}"
        )
        assert agree, (n, t)
    report("\n".join(rows), filename="model_validation.txt")
    benchmark(replay, spiral.program(256, 2), spec)


def test_merging_traffic_validation(benchmark):
    """Replay confirms the merged program moves less data — the quantity
    the A3 merging ablation prices."""
    spec = pentium_d()
    merged = six_step_program(1024, merge=True)
    unmerged = six_step_program(1024, merge=False)
    rm = replay(merged, spec)
    ru = replay(unmerged, spec)
    ratio = ru.accesses / rm.accesses
    report(
        f"Model validation: loop merging reduces replayed element traffic "
        f"by {ratio:.2f}x at n=1024 "
        f"({ru.accesses} -> {rm.accesses} accesses); L2 misses "
        f"{ru.l2_misses} -> {rm.l2_misses}.",
        filename="model_validation_merging.txt",
    )
    assert rm.accesses < ru.accesses
    benchmark(replay, merged, spec)
