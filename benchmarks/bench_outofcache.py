"""Claim C4: out-of-cache relative performance vs FFTW (paper Section 4).

"On the two-processor machines and for out-of-cache sizes, Spiral-generated
parallel code is running within 75% of FFTW's performance. ... On the
four-processor machines and for out-of-cache sizes, Spiral-generated
parallel code is equally fast (Xeon MP) and up to 25% faster (Opteron)."
"""

from series import KMAX, compute_point, machine_series, report


def _out_of_cache_ks(name: str) -> list[int]:
    """Sizes whose double-buffered working set exceeds the machine's L2."""
    from repro.machine import machine

    spec = machine(name)
    total_l2 = spec.l2_capacity_for(spec.p)
    return [
        k
        for k in range(6, KMAX + 1)
        if 2 * (1 << k) * 16 > total_l2
    ]


def test_out_of_cache_ratios(benchmark):
    rows = [
        "Claim C4: out-of-cache parallel performance, Spiral/FFTW ratio",
        f"{'machine':>10} | {'ks (log2 n)':>14} {'ratio range':>16} | paper",
    ]
    expectations = {
        # (lower bound, upper bound, paper text)
        "core_duo": (0.60, 1.10, "within 75% of FFTW"),
        "pentium_d": (0.55, 1.10, "within 75% of FFTW"),
        "opteron": (0.95, 2.20, "up to 25% faster"),
        "xeon_mp": (0.60, 1.70, "equally fast"),
    }
    for name, (lo, hi, text) in expectations.items():
        series = machine_series(name)
        ks = _out_of_cache_ks(name)
        assert ks, f"{name}: sweep never leaves L2; raise REPRO_BENCH_MAX_K"
        ratios = [
            series["spiral_pthreads"][k] / series["fftw_pthreads"][k]
            for k in ks
        ]
        rows.append(
            f"{name:>10} | {f'{ks[0]}..{ks[-1]}':>14} "
            f"{f'{min(ratios):.2f}..{max(ratios):.2f}':>16} | {text}"
        )
        assert min(ratios) >= lo, (name, min(ratios))
        assert max(ratios) <= hi, (name, max(ratios))
    report("\n".join(rows), filename="out_of_cache.txt")
    benchmark(compute_point, "core_duo", 10)


def test_four_proc_machines_favor_spiral_at_largest_size(benchmark):
    """At the largest measured size, Spiral >= ~FFTW on the 4-proc boxes."""
    for name in ("opteron", "xeon_mp"):
        series = machine_series(name)
        ratio = (
            series["spiral_pthreads"][KMAX] / series["fftw_pthreads"][KMAX]
        )
        assert ratio >= 0.75, (name, ratio)
    benchmark(compute_point, "opteron", 10)


def test_fftw_wins_two_proc_out_of_cache(benchmark):
    """The paper concedes FFTW's large-size edge on 2-processor machines
    ('the relative gain of FFTW is due to extensive optimizations that
    specifically target large problem sizes')."""
    series = machine_series("core_duo")
    ks = _out_of_cache_ks("core_duo")
    assert any(
        series["fftw_pthreads"][k] > series["spiral_pthreads"][k] for k in ks
    )
    benchmark(compute_point, "core_duo", 11)
