"""Figure 2 / Eq. (14): automatic derivation of the multicore Cooley-Tukey
FFT, benchmarked as generator performance.

The central artifact of the paper: tagging Eq. (1) with smp(p, mu) and
exhaustively rewriting with Table 1 must reproduce the printed Eq. (14)
verbatim, satisfy Definition 1, and compute the DFT exactly.  The benchmark
times the full derivation (formula generation + rewriting), i.e. the
generator itself, not the generated code.
"""

import numpy as np
import pytest

from repro.rewrite import (
    RewriteTrace,
    build_eq14,
    choose_ct_split,
    derive_multicore_ct,
)
from repro.spl import format_expr, is_fully_optimized
from series import report


@pytest.mark.parametrize("n,p,mu", [(256, 2, 4), (1024, 4, 4), (4096, 2, 8)])
def test_derivation_speed(benchmark, n, p, mu):
    result = benchmark(derive_multicore_ct, n, p, mu)
    assert is_fully_optimized(result, p, mu)
    m, k = choose_ct_split(n, p, mu)
    assert result == build_eq14(m, k, p, mu)


def test_derivation_report(benchmark):
    n, p, mu = 1024, 4, 4
    trace = RewriteTrace()
    f = derive_multicore_ct(n, p, mu, trace=trace)
    x = np.random.default_rng(0).standard_normal(n) + 0j
    ok = np.allclose(f.apply(x), np.fft.fft(x), atol=1e-6)
    rows = [
        f"Eq. (14) derivation for DFT_{n}, p={p}, mu={mu}:",
        f"  rewrite steps: {len(trace)}",
        f"  rules fired:   {sorted(set(trace.rule_names()))}",
        f"  Definition 1:  {is_fully_optimized(f, p, mu)}",
        f"  numerically exact vs numpy.fft: {ok}",
        "  formula:",
        "    " + format_expr(f),
    ]
    report("\n".join(rows), filename="eq14_derivation.txt")
    assert ok
    benchmark(derive_multicore_ct, n, p, mu)


def test_full_generation_pipeline_speed(benchmark):
    """Time formula -> rewriting -> loop merging -> Python codegen."""
    from repro.frontend import generate_fft

    gen = benchmark(generate_fft, 1024, 2, 4)
    x = np.random.default_rng(1).standard_normal(1024) + 0j
    assert np.allclose(gen(x), np.fft.fft(x), atol=1e-6)
