"""Ablation A2: thread pooling vs per-call thread creation.

The mechanism behind the C1/C2 crossovers: a pooled runtime pays ~1e3
cycles per call (dispatch + barriers), per-call creation pays ~1e5 cycles
per thread.  The ablation sweeps problem size and reports where each
profile's parallel execution overtakes sequential.
"""

from repro.frontend import SpiralSMP, feasible_threads
from repro.machine import SyncProfile, core_duo
from series import report


def test_sync_profile_ablation(benchmark):
    spec = core_duo()
    spiral = SpiralSMP(spec)
    rows = [
        "A2: synchronization-profile ablation, Core Duo, p = 2 "
        "(pseudo Mflop/s)",
        f"{'log2 n':>6} | {'sequential':>10} {'pooled':>10} "
        f"{'fork-join':>10} {'spawn/call':>10}",
    ]
    crossover = {}
    for k in range(6, 15):
        n = 1 << k
        seq = spiral.pseudo_mflops(n, 1)
        vals = {}
        for profile in (
            SyncProfile.POOLED,
            SyncProfile.FORK_JOIN,
            SyncProfile.SPAWN_PER_CALL,
        ):
            vals[profile] = spiral.pseudo_mflops(n, 2, profile)
            if profile not in crossover and vals[profile] > seq:
                crossover[profile] = k
        rows.append(
            f"{k:>6} | {seq:>10.0f} {vals[SyncProfile.POOLED]:>10.0f} "
            f"{vals[SyncProfile.FORK_JOIN]:>10.0f} "
            f"{vals[SyncProfile.SPAWN_PER_CALL]:>10.0f}"
        )
    rows.append(
        "crossovers (first k where parallel beats sequential): "
        + ", ".join(f"{p.value}=2^{k}" for p, k in crossover.items())
    )
    report("\n".join(rows), filename="ablation_pooling.txt")

    # pooled crossover must come well before spawn-per-call
    assert SyncProfile.POOLED in crossover
    assert crossover[SyncProfile.POOLED] <= 9
    spawn_k = crossover.get(SyncProfile.SPAWN_PER_CALL)
    assert spawn_k is None or spawn_k >= crossover[SyncProfile.POOLED] + 3
    # fork-join lands between the two
    fj = crossover.get(SyncProfile.FORK_JOIN)
    if fj is not None and spawn_k is not None:
        assert crossover[SyncProfile.POOLED] <= fj <= spawn_k
    benchmark(spiral.pseudo_mflops, 1024, 2, SyncProfile.POOLED)


def test_real_runtime_pool_reuse(benchmark):
    """The actual threaded runtime: pool reuse beats per-call threads even
    in wall-clock Python (thread creation is real OS work)."""
    import numpy as np

    from repro.frontend import generate_fft
    from repro.smp import OpenMPRuntime, PThreadsRuntime

    gen = generate_fft(4096, threads=2)
    x = np.random.default_rng(0).standard_normal(4096) + 0j

    with PThreadsRuntime(2) as pool:
        gen.run(x, pool)  # warm the pool

        def pooled():
            return gen.run(x, pool)

        t_pooled = benchmark(pooled)
    # correctness of the benchmarked callable
    np.testing.assert_allclose(
        gen.run(x, OpenMPRuntime(2)), np.fft.fft(x), atol=1e-6
    )
