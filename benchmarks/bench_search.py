"""Search quality: Spiral's DP search vs fixed radices and random search.

The paper relies on Spiral's search (Section 2.3, "Search/learning") to
adapt to the memory hierarchy.  This bench compares DP-selected
factorization trees against fixed strategies under the machine cost model
and measures the search's own cost.
"""

from repro.machine import SyncProfile, core_duo, estimate_cost
from repro.rewrite import derive_sequential_ct, expand_dft
from repro.search import dp_search, model_objective, random_search
from repro.sigma import lower
from series import report


def _fixed_cost(n, strategy, spec):
    f = expand_dft(derive_sequential_ct(n), strategy, min_leaf=32)
    return estimate_cost(lower(f), spec, 1, SyncProfile.NONE).total_cycles


def test_dp_vs_fixed_strategies(benchmark):
    spec = core_duo()
    obj = model_objective(spec)
    rows = [
        "Search quality (modeled cycles, sequential, Core Duo; lower is "
        "better)",
        f"{'n':>6} | {'DP search':>11} {'balanced':>11} {'radix2':>11} "
        f"{'random(8)':>11} | {'DP evals':>8}",
    ]
    for n in (256, 1024, 4096):
        dp = dp_search(n, obj, leaf_max=32)
        rnd = random_search(n, obj, samples=8, leaf_max=32)
        bal = _fixed_cost(n, "balanced", spec)
        r2 = _fixed_cost(n, "radix2", spec)
        rows.append(
            f"{n:>6} | {dp.value:>11.0f} {bal:>11.0f} {r2:>11.0f} "
            f"{rnd.value:>11.0f} | {dp.evaluations:>8}"
        )
        # DP never loses to the strategies inside its search space
        assert dp.value <= rnd.value * 1.0001
        assert dp.value <= bal * 1.01
    report("\n".join(rows), filename="search_quality.txt")
    benchmark(dp_search, 256, obj, 32)


def test_search_result_is_valid_program(benchmark):
    import numpy as np

    spec = core_duo()
    res = dp_search(1024, model_objective(spec), leaf_max=32)
    prog = lower(res.formula)
    x = np.random.default_rng(0).standard_normal(1024) + 0j
    np.testing.assert_allclose(prog.apply(x), np.fft.fft(x), atol=1e-6)
    benchmark(lambda: lower(res.formula))
