"""Ablation A1: what does mu-awareness buy?

The rules force per-processor blocks to be multiples of the cache-line
length mu (rule (10)'s LinePerm granularity and the divisibility
preconditions).  Removing mu from the derivation (deriving with mu = 1 and
running on a mu = 4 machine) reintroduces sub-line block boundaries; the
mu-oblivious cyclic schedule is the worst case.  Measured: falsely shared
lines and modeled cycles on the Pentium D (expensive bus coherence).
"""

from repro.frontend import SpiralSMP
from repro.machine import (
    SyncProfile,
    count_false_sharing,
    estimate_cost,
    pentium_d,
    schedule_cyclic,
)
from repro.rewrite import derive_multicore_ct, derive_sequential_ct, expand_dft
from repro.sigma import lower
from series import report

MU = 4


def test_mu_awareness_ablation(benchmark):
    spec = pentium_d()
    rows = [
        "A1: mu-awareness ablation on the Pentium D (mu = 4), p = 2",
        f"{'n':>6} | {'variant':>14} {'false-shared':>12} {'cycles':>12} "
        f"{'pseudo-Mflop/s':>14}",
    ]
    for n in (1024, 4096):
        variants = {
            "mu-aware": lower(
                expand_dft(derive_multicore_ct(n, 2, MU), "balanced", min_leaf=32)
            ),
            "mu=1 derive": lower(
                expand_dft(derive_multicore_ct(n, 2, 1), "balanced", min_leaf=32)
            ),
            "cyclic": schedule_cyclic(
                lower(
                    expand_dft(
                        derive_sequential_ct(n), "balanced", min_leaf=32
                    )
                ),
                2,
            ),
        }
        cycles = {}
        for name, prog in variants.items():
            fs = count_false_sharing(prog, MU)
            cost = estimate_cost(prog, spec, 2, SyncProfile.POOLED)
            cycles[name] = cost.total_cycles
            rows.append(
                f"{n:>6} | {name:>14} {fs:>12} {cost.total_cycles:>12.0f} "
                f"{cost.pseudo_mflops(spec):>14.0f}"
            )
            if name == "mu-aware":
                assert fs == 0
            if name == "cyclic":
                assert fs > 0
        # the mu-aware schedule is the fastest variant
        assert cycles["mu-aware"] <= cycles["cyclic"]
        assert cycles["mu-aware"] <= cycles["mu=1 derive"] * 1.001
    report("\n".join(rows), filename="ablation_mu.txt")
    spiral = SpiralSMP(spec)
    benchmark(count_false_sharing, spiral.program(1024, 2), MU)
