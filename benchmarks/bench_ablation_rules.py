"""Ablation A3: design choices inside the rewriting system.

1. Rule (8) has two variants for splitting the stride permutation; the
   derivation's default (8a) produces Eq. (14).  Both are valid — compare
   their modeled cost.
2. Loop merging (folding permutations/diagonals into loops) vs the explicit
   passes of the classical six-step algorithm — what ref [11]'s machinery
   buys on a shared-memory machine.
"""

import numpy as np

from repro.baselines import six_step_program
from repro.frontend import SpiralSMP
from repro.machine import SyncProfile, core_duo, estimate_cost
from repro.rewrite import derive_sequential_ct, expand_dft, six_step
from repro.sigma import lower
from series import report


def test_loop_merging_ablation(benchmark):
    spec = core_duo()
    rows = [
        "A3a: loop merging ablation (six-step formula, n = 4096, "
        "sequential cost model)",
        f"{'variant':>22} | {'stages':>6} {'cycles':>12} "
        f"{'pseudo-Mflop/s':>14}",
    ]
    n = 4096
    merged = six_step_program(n, merge=True)
    unmerged = six_step_program(n, merge=False)
    results = {}
    for name, prog in (("merged (Spiral)", merged), ("explicit passes", unmerged)):
        cost = estimate_cost(prog, spec, 1, SyncProfile.NONE)
        results[name] = cost.total_cycles
        rows.append(
            f"{name:>22} | {len(prog.stages):>6} {cost.total_cycles:>12.0f} "
            f"{cost.pseudo_mflops(spec):>14.0f}"
        )
    # explicit permutation passes add stages and memory traffic
    assert len(unmerged.stages) > len(merged.stages)
    assert results["explicit passes"] >= results["merged (Spiral)"]
    report("\n".join(rows), filename="ablation_merging.txt")
    benchmark(six_step_program, 1024, None, 32, True)


def test_rule8_variant_ablation(benchmark):
    """Compare the two legal decompositions of L^{mn}_m, both as local
    matrix identities and as end-to-end derivations priced by the model."""
    from repro.rewrite import derive_multicore_ct
    from repro.rewrite.smp_rules import RULE_8_STRIDE_PERM
    from repro.spl import SMP, L, format_expr

    spec = core_duo()
    expr = SMP(2, 4, L(256, 16))
    alts = list(RULE_8_STRIDE_PERM.rewrites(expr))
    assert len(alts) == 2
    rows = ["A3b: rule (8) variants for L^256_16, p=2, mu=4"]
    for i, alt in enumerate(alts):
        # verify both are the same matrix
        def strip(e):
            kids = [strip(c) for c in e.children]
            e2 = e.rebuild(*kids) if kids else e
            return e2.child if isinstance(e2, SMP) else e2

        np.testing.assert_allclose(
            strip(alt).to_matrix(), expr.to_matrix(), atol=1e-12
        )
        rows.append(f"  variant {'ab'[i]}: {format_expr(strip(alt))}")

    # end-to-end: derive Eq. (14) with each preference and price both
    n = 4096
    for variant in ("a", "b"):
        f = derive_multicore_ct(n, 2, 4, rule8_variant=variant)
        from repro.rewrite import expand_dft

        prog = lower(expand_dft(f, "balanced", min_leaf=32))
        cost = estimate_cost(prog, spec, 2, SyncProfile.POOLED)
        rows.append(
            f"  full derivation, prefer (8{variant}): "
            f"{cost.total_cycles:>9.0f} cycles at n={n}"
        )
        x = np.random.default_rng(0).standard_normal(n) + 0j
        np.testing.assert_allclose(prog.apply(x), np.fft.fft(x), atol=1e-6)
    rows.append(
        "  both derivations are exact; the default (8a) yields Eq. (14)'s "
        "I_p (x)|| L local-transpose form"
    )
    report("\n".join(rows), filename="ablation_rule8.txt")
    benchmark(lambda: list(RULE_8_STRIDE_PERM.rewrites(expr)))


def test_radix_strategy_ablation(benchmark):
    """Expansion strategy (the search dimension): balanced vs radix-2."""
    spec = core_duo()
    rows = [
        "A3c: expansion strategy ablation (sequential, modeled cycles)",
        f"{'n':>6} | {'balanced':>12} {'radix2':>12} {'ratio':>6}",
    ]
    for n in (256, 4096, 65536):
        costs = {}
        for strategy in ("balanced", "radix2"):
            f = expand_dft(derive_sequential_ct(n), strategy, min_leaf=32)
            costs[strategy] = estimate_cost(
                lower(f), spec, 1, SyncProfile.NONE
            ).total_cycles
        rows.append(
            f"{n:>6} | {costs['balanced']:>12.0f} {costs['radix2']:>12.0f} "
            f"{costs['balanced'] / costs['radix2']:>6.2f}"
        )
    report("\n".join(rows), filename="ablation_radix.txt")
    benchmark(
        lambda: lower(
            expand_dft(derive_sequential_ct(1024), "balanced", min_leaf=32)
        )
    )
