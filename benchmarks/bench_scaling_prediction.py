"""Extension bench: predicted scaling on a hypothetical 8-core CMP.

The paper closes arguing that multicore will make "programming for
performance" an expert skill and that generators must adapt automatically.
This experiment extrapolates: the same Eq. (14)-style derivation targets a
projected 8-core chip and the cost model predicts the speedup over core
counts — including where the (p*mu)^2 | n existence bound and memory
bandwidth cap the scaling.
"""

from repro.frontend import SpiralSMP, feasible_threads
from repro.machine import SyncProfile, cmp8
from series import report


def test_scaling_over_cores(benchmark):
    spec = cmp8()
    spiral = SpiralSMP(spec)
    rows = [
        "Extension: predicted speedup of the multicore CT FFT on a "
        "hypothetical 8-core CMP",
        f"{'log2 n':>6} | " + " ".join(f"{f'p={p}':>7}" for p in (1, 2, 4, 8)),
    ]
    speedups = {}
    for k in (8, 10, 12, 14, 16):
        n = 1 << k
        seq = spiral.cost(n, 1).total_cycles
        cells = []
        for p in (1, 2, 4, 8):
            t = feasible_threads(n, p, spec.mu) if p > 1 else 1
            if t < p:
                cells.append("  n/a")
                continue
            cyc = spiral.cost(n, p, SyncProfile.POOLED).total_cycles
            s = seq / cyc
            speedups[(k, p)] = s
            cells.append(f"{s:>6.2f}x")
        rows.append(f"{k:>6} | " + " ".join(f"{c:>7}" for c in cells))
    report("\n".join(rows), filename="scaling_prediction.txt")

    # 8-way only exists from n >= (8*4)^2 = 2^10
    assert (8, 8) not in speedups
    assert (10, 8) in speedups
    # speedup grows with p in the compute-bound region
    assert speedups[(12, 8)] > speedups[(12, 4)] > speedups[(12, 2)] > 1.0
    # 8-way achieves substantial (but sublinear) speedup
    assert 3.0 < speedups[(12, 8)] <= 8.0
    benchmark(spiral.cost, 1 << 12, 8, SyncProfile.POOLED)


def test_existence_bound_governs_small_sizes(benchmark):
    """The (p*mu)^2 | n bound is the structural limit the paper states for
    Eq. (14): more cores need larger minimum sizes."""
    spec = cmp8()
    assert feasible_threads(1 << 8, 8, spec.mu) == 4  # (8*4)^2 > 2^8
    assert feasible_threads(1 << 9, 8, spec.mu) == 4
    assert feasible_threads(1 << 10, 8, spec.mu) == 8  # (8*4)^2 = 2^10
    benchmark(feasible_threads, 1 << 10, 8, spec.mu)
