"""Extension bench: the short-vector (SIMD) rewriting layer.

Not a paper table — the paper defers SIMD to refs [10, 13] but explicitly
designs Eq. (14) to compose with it.  Measures the arithmetic reduction the
vec(nu) rules achieve and the derivation cost of the smp x vec tandem.
"""

import numpy as np

from repro.rewrite import cooley_tukey_step, derive_multicore_ct
from repro.vector import (
    derive_multicore_vector_ct,
    is_fully_vectorized,
    vectorize,
)
from series import report


def test_vector_op_reduction(benchmark):
    rows = [
        "SIMD extension: vector-op reduction of the vec(nu) rules",
        f"{'n':>6} {'nu':>3} | {'scalar ops':>10} {'vector ops':>10} "
        f"{'reduction':>9}",
    ]
    for m, k in ((16, 16), (32, 32), (64, 32)):
        n = m * k
        f = cooley_tukey_step(m, k)
        for nu in (2, 4):
            v = vectorize(f, nu)
            assert is_fully_vectorized(v, nu)
            rows.append(
                f"{n:>6} {nu:>3} | {f.flops():>10} {v.flops():>10} "
                f"{f.flops() / v.flops():>8.2f}x"
            )
            # vectorization must reduce arithmetic by a factor close to nu
            assert f.flops() / v.flops() > nu * 0.6
    report("\n".join(rows), filename="vectorization.txt")
    benchmark(vectorize, cooley_tukey_step(16, 16), 2)


def test_tandem_derivation(benchmark):
    n, p, mu, nu = 1024, 4, 4, 4
    f = benchmark(derive_multicore_vector_ct, n, p, mu, nu)
    x = np.random.default_rng(0).standard_normal(n) + 0j
    assert np.allclose(f.apply(x), np.fft.fft(x), atol=1e-6)
    plain = derive_multicore_ct(n, p, mu)
    report(
        f"smp({p},{mu}) x vec({nu}) tandem for DFT_{n}: "
        f"{plain.flops()} scalar ops -> {f.flops()} vector ops "
        f"({plain.flops() / f.flops():.2f}x modeled SIMD reduction); "
        "Definition 1 preserved.",
        filename="vectorization_tandem.txt",
    )
