"""Figure 3 (a)-(d): DFT performance on four shared-memory machines.

Regenerates the paper's four panels — pseudo Mflop/s (5 n log2 n / runtime)
over problem sizes 2^6..2^KMAX for the five series: Spiral pthreads, Spiral
OpenMP, Spiral sequential, FFTW pthreads (best thread count, as the paper's
``bench`` runs report), FFTW sequential — on the simulated Core Duo,
Opteron, Pentium D, and Xeon MP.

Each test prints the panel's rows, writes ``results/figure3_<machine>.csv``,
and asserts the panel's qualitative shape.  The ``benchmark`` fixture times
one representative cost-model evaluation (the quantity the harness produces
per point).
"""

import pytest

from series import (
    KMAX,
    compute_point,
    crossover,
    format_series_table,
    machine_series,
    report,
    write_csv,
)


def _run_panel(benchmark, machine_name: str, panel: str):
    from repro.machine import machine
    from repro.plotting import ascii_chart

    series = machine_series(machine_name)
    table = format_series_table(machine_name, series)
    chart = ascii_chart(
        {
            "Spiral pthreads": series["spiral_pthreads"],
            "Spiral OpenMP": series["spiral_openmp"],
            "Spiral seq": series["spiral_seq"],
            "FFTW pthreads": series["fftw_pthreads"],
            "FFTW seq": series["fftw_seq"],
        },
        title=f"Figure 3({panel}): {machine(machine_name).name} "
        "(pseudo Mflop/s, higher is better)",
        ylabel="Mflop/s",
        xlabel="log2 n",
    )
    report(
        f"== Figure 3({panel}) ==\n{table}\n\n{chart}",
        filename=f"figure3_{machine_name}.txt",
    )
    write_csv(machine_name, series)
    benchmark(compute_point, machine_name, 10)
    return series


def _assert_common_shape(series, p):
    """Behaviour the paper reports for every machine (Section 4)."""
    # Spiral parallel eventually beats sequential...
    k_spiral = crossover(series["spiral_pthreads"], series["spiral_seq"])
    assert k_spiral is not None, "Spiral never gains from parallelization"
    # ...and does so earlier than the FFTW model starts using threads.
    k_fftw = min(
        (k for k, t in series["fftw_threads_used"].items() if t > 1),
        default=None,
    )
    assert k_fftw is not None, "FFTW model never goes parallel"
    assert k_spiral < k_fftw
    # In-cache region: Spiral parallel clearly ahead of FFTW.
    mid = range(max(10, k_spiral + 1), k_fftw)
    assert all(
        series["spiral_pthreads"][k] > series["fftw_pthreads"][k] for k in mid
    )
    # pthreads >= OpenMP (lower-overhead synchronization), always.
    assert all(
        series["spiral_pthreads"][k] >= series["spiral_openmp"][k] * 0.999
        for k in series["spiral_pthreads"]
    )
    # Sequential performance within 10% of FFTW's across the sweep.
    for k in series["spiral_seq"]:
        ratio = series["spiral_seq"][k] / series["fftw_seq"][k]
        assert 0.9 <= ratio <= 1.1, (k, ratio)


def test_fig3a_core_duo(benchmark):
    series = _run_panel(benchmark, "core_duo", "a")
    _assert_common_shape(series, 2)
    # CMP with shared L2: parallel speedup already in L1 (paper: N = 2^8)
    k = crossover(series["spiral_pthreads"], series["spiral_seq"])
    assert k <= 9


def test_fig3b_opteron(benchmark):
    series = _run_panel(benchmark, "opteron", "b")
    _assert_common_shape(series, 4)
    # 4-core CMP: Spiral reaches its top rate with all four cores mid-range
    peak_k = max(
        series["spiral_pthreads"], key=series["spiral_pthreads"].get
    )
    assert series["spiral_threads_used"][peak_k] == 4
    # out-of-cache: Spiral faster than or equal to FFTW (paper: up to +25%)
    k_last = KMAX
    assert (
        series["spiral_pthreads"][k_last]
        >= 0.95 * series["fftw_pthreads"][k_last]
    )


def test_fig3c_pentium_d(benchmark):
    series = _run_panel(benchmark, "pentium_d", "c")
    _assert_common_shape(series, 2)
    # bus-coherence machine: crossover later than on the Core Duo CMP
    k_pd = crossover(series["spiral_pthreads"], series["spiral_seq"])
    k_cd = crossover(
        machine_series("core_duo")["spiral_pthreads"],
        machine_series("core_duo")["spiral_seq"],
    )
    assert k_pd >= k_cd


def test_fig3d_xeon_mp(benchmark):
    series = _run_panel(benchmark, "xeon_mp", "d")
    _assert_common_shape(series, 4)
    # classical bus SMP out-of-cache: Spiral and FFTW roughly equal
    k_last = KMAX
    ratio = series["spiral_pthreads"][k_last] / series["fftw_pthreads"][k_last]
    assert 0.6 <= ratio <= 1.7
