"""Serving-layer benchmark: batching window × client concurrency.

Sweeps the in-process ``FFTService`` (no socket noise) over batching
windows and closed-loop client counts, recording throughput and p50/p99
request latency per cell, plus an unbatched one-request-at-a-time
baseline.  Demonstrates the batching economics: with concurrent clients,
a small window trades a bounded latency increase for a large throughput
gain by amortizing dispatch and index-table traversal over stacked rows.
"""

import threading
import time

import numpy as np

from repro.serve import FFTService, ServeConfig
from repro.serve.metrics import percentile
from series import report

N = 1024
REQUESTS_PER_CLIENT = 40
WINDOWS_MS = (0.0, 1.0, 4.0)
CLIENTS = (1, 4, 8)


def _vec(seed):
    rng = np.random.default_rng(seed)
    return rng.standard_normal(N) + 1j * rng.standard_normal(N)


def _percentile(samples, q):
    return percentile(sorted(samples), q / 100)


def _drive(svc, clients, requests, no_batch=False):
    """Closed-loop clients; returns (throughput_rps, latencies_s)."""
    latencies = []
    lock = threading.Lock()

    def worker(cid):
        x = _vec(cid)
        mine = []
        for _ in range(requests):
            t0 = time.perf_counter()
            svc.transform(x, no_batch=no_batch)
            mine.append(time.perf_counter() - t0)
        with lock:
            latencies.extend(mine)

    threads = [
        threading.Thread(target=worker, args=(c,)) for c in range(clients)
    ]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t0
    return clients * requests / wall, latencies


def test_window_concurrency_sweep(benchmark):
    rows = [
        f"Serving sweep: DFT_{N}, {REQUESTS_PER_CLIENT} requests/client "
        "(in-process, sequential plan)",
        f"{'window':>9} {'clients':>7} | {'req/s':>8} {'p50 ms':>8} "
        f"{'p99 ms':>8} {'occupancy':>9}",
    ]
    best = {}
    occupancies = {}
    for window_ms in WINDOWS_MS:
        for clients in CLIENTS:
            cfg = ServeConfig(window_s=window_ms / 1e3, max_batch=64)
            with FFTService(cfg) as svc:
                svc.transform(_vec(0))  # plan + warm the cache
                rps, lats = _drive(svc, clients, REQUESTS_PER_CLIENT)
                occ = svc.stats()["avg_batch_occupancy"]
            rows.append(
                f"{window_ms:>7.1f}ms {clients:>7} | {rps:>8.0f} "
                f"{_percentile(lats, 50) * 1e3:>8.2f} "
                f"{_percentile(lats, 99) * 1e3:>8.2f} {occ:>9.2f}"
            )
            best[clients] = max(best.get(clients, 0.0), rps)
            occupancies[(window_ms, clients)] = occ

    with FFTService(ServeConfig(window_s=0.0)) as svc:
        svc.transform(_vec(0))
        base_rps, base_lats = _drive(
            svc, 1, REQUESTS_PER_CLIENT, no_batch=True
        )
    rows.append(
        f"{'unbatch':>9} {1:>7} | {base_rps:>8.0f} "
        f"{_percentile(base_lats, 50) * 1e3:>8.2f} "
        f"{_percentile(base_lats, 99) * 1e3:>8.2f} {'1.00':>9}"
    )
    rows.append(
        f"best batched vs unbatched baseline: "
        f"{max(best.values()) / base_rps:.1f}x"
    )
    report("\n".join(rows), filename="serve_sweep.txt")

    # batching must actually coalesce: concurrent clients fill batches
    # (throughput ratios are reported as data — wall-clock comparisons on
    # a loaded single-core host are too noisy to gate on)
    assert occupancies[(WINDOWS_MS[-1], CLIENTS[-1])] > 2.0
    assert occupancies[(WINDOWS_MS[-1], 1)] <= 1.0 + 1e-9
    assert max(best.values()) > 0

    cfg = ServeConfig(window_s=0.0)
    with FFTService(cfg) as svc:
        x = _vec(0)
        svc.transform(x)
        benchmark(svc.transform, x)
